"""The ``python -m repro lint`` subcommand: output modes, baselines, exits."""

import json

import pytest

from repro.api.cli import main

CLEAN = "from repro.sim.units import GIB\ncache_capacity_bytes = GIB\n"
DIRTY = (
    "import time\n"
    "def measure():\n"
    "    return time.time()\n"
)


@pytest.fixture()
def tree(tmp_path, monkeypatch):
    """A fake checkout: src/repro counts as library code, examples does not."""
    package = tmp_path / "src" / "repro"
    package.mkdir(parents=True)
    (package / "clean.py").write_text(CLEAN)
    (tmp_path / "examples").mkdir()
    (tmp_path / "examples" / "demo.py").write_text(DIRTY)  # non-library: allowed
    monkeypatch.chdir(tmp_path)
    return tmp_path


def write_dirty(tree):
    path = tree / "src" / "repro" / "dirty.py"
    path.write_text(DIRTY)
    return path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tree, capsys):
        assert main(["lint", "src", "examples"]) == 0
        assert "0 finding(s)" in capsys.readouterr().err

    def test_findings_exit_one(self, tree, capsys):
        write_dirty(tree)
        assert main(["lint", "src"]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "dirty.py:3:12" in out

    def test_missing_path_exits_two(self, tree, capsys):
        assert main(["lint", "no-such-dir"]) == 2
        assert "no-such-dir" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tree, capsys):
        assert main(["lint", "--rules", "NOPE001", "src"]) == 2
        assert "NOPE001" in capsys.readouterr().err

    def test_default_paths_cover_src_and_examples(self, tree, capsys):
        write_dirty(tree)
        assert main(["lint"]) == 1


class TestJsonOutput:
    def test_json_findings_parse_and_locate(self, tree, capsys):
        write_dirty(tree)
        assert main(["lint", "--json", "src"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 1
        finding = payload[0]
        assert finding["rule"] == "DET001"
        assert finding["path"].endswith("dirty.py")
        assert finding["line"] == 3
        assert "time.time" in finding["message"]

    def test_json_clean_is_empty_list(self, tree, capsys):
        assert main(["lint", "--json", "src"]) == 0
        assert json.loads(capsys.readouterr().out) == []

    def test_list_rules_json(self, tree, capsys):
        assert main(["lint", "--list-rules", "--json"]) == 0
        rules = json.loads(capsys.readouterr().out)
        assert {"DET001", "PAR001"} <= {rule["id"] for rule in rules}
        assert all(rule["rationale"] for rule in rules)


class TestRuleSelection:
    def test_rules_filter_limits_checks(self, tree, capsys):
        write_dirty(tree)
        assert main(["lint", "--rules", "UNIT001", "src"]) == 0
        assert main(["lint", "--rules", "DET001,UNIT001", "src"]) == 1

    def test_list_rules_text(self, tree, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "library code only" in out


class TestBaselineWorkflow:
    def test_update_then_lint_is_clean_until_new_finding(self, tree, capsys):
        write_dirty(tree)
        baseline = "lint-baseline.json"
        assert main(["lint", "--baseline", baseline, "--update-baseline", "src"]) == 0
        # Baselined finding no longer fails the run...
        assert main(["lint", "--baseline", baseline, "src"]) == 0
        assert "(1 baselined)" in capsys.readouterr().err
        # ...and survives the file moving around...
        path = tree / "src" / "repro" / "dirty.py"
        path.write_text("# shifted down\n\n" + DIRTY)
        assert main(["lint", "--baseline", baseline, "src"]) == 0
        # ...but a *new* violation still fails.
        path.write_text(DIRTY + "\ndeadline = time.monotonic()\n")
        assert main(["lint", "--baseline", baseline, "src"]) == 1
        out = capsys.readouterr().out
        assert "monotonic" in out
        assert "time.time" not in out  # the baselined one stays suppressed

    def test_update_baseline_requires_baseline_path(self, tree, capsys):
        assert main(["lint", "--update-baseline", "src"]) == 2

    def test_malformed_baseline_exits_two(self, tree, capsys):
        (tree / "bad.json").write_text(json.dumps({"version": 99}))
        assert main(["lint", "--baseline", "bad.json", "src"]) == 2


class TestStandaloneModule:
    def test_python_m_repro_lint_entry(self, tree, capsys):
        from repro.lint.cli import main as lint_main

        write_dirty(tree)
        assert lint_main(["src"]) == 1
        assert lint_main(["--rules", "UNIT001", "src"]) == 0
