"""Tests for device specifications (paper Table 1)."""

import pytest

from repro.sim.units import GB, KIB, MICROSECOND, TB
from repro.storage import (
    TABLE1_SPECS,
    DeviceSpec,
    Technology,
    cxl_3dxp_spec,
    dimm_3dxp_spec,
    nand_flash_spec,
    optane_ssd_spec,
    zssd_spec,
)


class TestTable1Values:
    def test_all_technologies_present(self):
        assert set(TABLE1_SPECS) == {
            Technology.NAND_FLASH,
            Technology.OPTANE_SSD,
            Technology.ZSSD,
            Technology.DIMM_3DXP,
            Technology.CXL_3DXP,
        }

    def test_nand_flash_iops_and_granularity(self):
        spec = nand_flash_spec()
        assert spec.max_read_iops == pytest.approx(0.5e6)
        assert spec.access_granularity_bytes == 4 * KIB
        assert spec.sourcing == "multi"

    def test_optane_iops_latency_granularity(self):
        spec = optane_ssd_spec()
        assert spec.max_read_iops == pytest.approx(4e6)
        assert spec.access_granularity_bytes == 512
        # O(10us) unloaded latency.
        assert spec.base_read_latency == pytest.approx(10 * MICROSECOND)

    def test_optane_latency_order_of_magnitude_better_than_nand(self):
        assert nand_flash_spec().base_read_latency / optane_ssd_spec().base_read_latency >= 5

    def test_optane_endurance_much_higher_than_nand(self):
        assert optane_ssd_spec().endurance_dwpd / nand_flash_spec().endurance_dwpd >= 10

    def test_relative_costs_ordering(self):
        # Nand Flash is the cheapest per GB; Optane SSD sits between Nand and DIMM.
        assert nand_flash_spec().relative_cost_per_gb < zssd_spec().relative_cost_per_gb
        assert zssd_spec().relative_cost_per_gb < optane_ssd_spec().relative_cost_per_gb
        assert optane_ssd_spec().relative_cost_per_gb < dimm_3dxp_spec().relative_cost_per_gb
        assert all(spec.relative_cost_per_gb < 1.0 for spec in TABLE1_SPECS.values())

    def test_cxl_has_highest_iops(self):
        iops = {tech: spec.max_read_iops for tech, spec in TABLE1_SPECS.items()}
        assert max(iops, key=iops.get) in (Technology.CXL_3DXP, Technology.DIMM_3DXP)
        assert cxl_3dxp_spec().max_read_iops > 10e6

    def test_byte_addressable_technologies_have_small_granularity(self):
        assert dimm_3dxp_spec().access_granularity_bytes == 64
        assert cxl_3dxp_spec().access_granularity_bytes <= 128


class TestDeviceSpecValidation:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            nand_flash_spec(capacity_bytes=0)

    def test_with_capacity_returns_copy(self):
        spec = nand_flash_spec(2 * TB)
        smaller = spec.with_capacity(100 * GB)
        assert smaller.capacity_bytes == 100 * GB
        assert spec.capacity_bytes == 2 * TB
        assert smaller.max_read_iops == spec.max_read_iops

    def test_capacity_gb_property(self):
        assert nand_flash_spec(2 * TB).capacity_gb == pytest.approx(2000.0)

    def test_service_time_matches_aggregate_iops(self):
        spec = optane_ssd_spec()
        # parallelism channels each serving one IO per service_time gives max IOPS.
        aggregate = spec.internal_parallelism / spec.service_time_per_io()
        assert aggregate == pytest.approx(spec.max_read_iops)

    def test_invalid_fields_rejected(self):
        with pytest.raises(ValueError):
            DeviceSpec(
                name="bad",
                technology=Technology.NAND_FLASH,
                capacity_bytes=GB,
                max_read_iops=-1,
                base_read_latency=1e-4,
                access_granularity_bytes=4096,
                supports_sub_block=True,
                endurance_dwpd=5,
                relative_cost_per_gb=0.1,
                sourcing="multi",
            )
        with pytest.raises(ValueError):
            DeviceSpec(
                name="bad",
                technology=Technology.NAND_FLASH,
                capacity_bytes=GB,
                max_read_iops=1e6,
                base_read_latency=1e-4,
                access_granularity_bytes=4096,
                supports_sub_block=True,
                endurance_dwpd=5,
                relative_cost_per_gb=0.1,
                sourcing="multi",
                tail_latency_probability=1.5,
            )
