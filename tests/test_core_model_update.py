"""Tests for model-update planning (appendix A.3)."""

import pytest

from repro.core import ModelUpdatePlanner, UpdateStrategy
from repro.sim.units import GB, TB
from repro.storage import nand_flash_spec, optane_ssd_spec


def _planner(spec_factory=nand_flash_spec, capacity=2 * TB, embedding_bytes=100 * GB):
    return ModelUpdatePlanner(
        device_specs=[spec_factory(capacity), spec_factory(capacity)],
        embedding_bytes_on_sm=embedding_bytes,
        dense_bytes=1 * GB,
    )


class TestModelUpdatePlanner:
    def test_full_offline_duration_uses_aggregate_write_bw(self):
        planner = _planner()
        plan = planner.plan(UpdateStrategy.FULL_OFFLINE)
        expected = 100 * GB / planner.aggregate_write_bandwidth
        assert plan.duration_seconds == pytest.approx(expected)
        assert plan.host_serving_during_update is False

    def test_full_online_is_slower_but_keeps_serving(self):
        planner = _planner()
        offline = planner.plan(UpdateStrategy.FULL_OFFLINE)
        online = planner.plan(UpdateStrategy.FULL_ONLINE)
        assert online.duration_seconds > offline.duration_seconds
        assert online.host_serving_during_update is True

    def test_incremental_writes_fraction(self):
        planner = _planner()
        plan = planner.plan(UpdateStrategy.INCREMENTAL, incremental_fraction=0.2)
        assert plan.bytes_written == pytest.approx(20 * GB)

    def test_dense_only_touches_no_sm(self):
        plan = _planner().plan(UpdateStrategy.DENSE_ONLY)
        assert plan.bytes_written == 0.0
        assert plan.sustainable_interval_seconds == 0.0

    def test_endurance_limits_full_updates_on_nand(self):
        planner = _planner(nand_flash_spec, capacity=400 * GB, embedding_bytes=300 * GB)
        plan = planner.plan(UpdateStrategy.FULL_ONLINE)
        # Refreshing 300GB on 2x400GB Nand every few minutes is not sustainable.
        assert not plan.sustainable_at_interval(5 * 60)

    def test_optane_sustains_much_more_frequent_updates(self):
        nand_plan = _planner(nand_flash_spec, 400 * GB).plan(UpdateStrategy.FULL_ONLINE)
        optane_plan = _planner(optane_ssd_spec, 400 * GB).plan(UpdateStrategy.FULL_ONLINE)
        assert (
            optane_plan.sustainable_interval_seconds
            < nand_plan.sustainable_interval_seconds
        )

    def test_incremental_more_sustainable_than_full(self):
        planner = _planner(nand_flash_spec, 400 * GB)
        full = planner.plan(UpdateStrategy.FULL_ONLINE)
        incremental = planner.plan(UpdateStrategy.INCREMENTAL, incremental_fraction=0.05)
        assert (
            incremental.sustainable_interval_seconds < full.sustainable_interval_seconds
        )

    def test_strategy_accepts_string(self):
        plan = _planner().plan("incremental")
        assert plan.strategy is UpdateStrategy.INCREMENTAL

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            ModelUpdatePlanner([], 1, 1)
        with pytest.raises(ValueError):
            ModelUpdatePlanner([nand_flash_spec()], 0, 1)
        with pytest.raises(ValueError):
            ModelUpdatePlanner([nand_flash_spec()], 1, -1)
        with pytest.raises(ValueError):
            _planner().plan(UpdateStrategy.INCREMENTAL, incremental_fraction=0.0)
        with pytest.raises(ValueError):
            _planner().plan(UpdateStrategy.FULL_ONLINE).sustainable_at_interval(0)
