"""Tests for tier specs, parsing and the runtime tier objects."""

import pytest

from repro.hierarchy import (
    DeviceTier,
    FastTier,
    TierSpec,
    TierStats,
    build_tiers,
    parse_technology,
    parse_tiers,
)
from repro.sim.units import GIB, KIB, MIB, TB, parse_size
from repro.storage.spec import TABLE1_SPECS, Technology


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("512", 512),
            (4096, 4096),
            ("4KiB", 4 * KIB),
            ("8 MiB", 8 * MIB),
            ("1gib", GIB),
            ("2TB", 2 * TB),
            ("1.5KiB", 1536),
        ],
    )
    def test_accepted_forms(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("bad", ["", "huge", "4XB", None, True, 1.5])
    def test_rejected_forms(self, bad):
        with pytest.raises(ValueError):
            parse_size(bad)


class TestParseTechnology:
    def test_aliases(self):
        assert parse_technology("nand") is Technology.NAND_FLASH
        assert parse_technology("cxl") is Technology.CXL_3DXP
        assert parse_technology("dram") is Technology.DRAM

    def test_enum_value_and_name(self):
        assert parse_technology("pcie_zssd") is Technology.ZSSD
        assert parse_technology("OPTANE_SSD") is Technology.OPTANE_SSD
        assert parse_technology(Technology.DIMM_3DXP) is Technology.DIMM_3DXP

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown memory technology"):
            parse_technology("hdd")


class TestTierSpec:
    def test_from_string(self):
        spec = TierSpec.from_value("cxl:32GiB")
        assert spec.technology is Technology.CXL_3DXP
        assert spec.capacity_bytes == 32 * GIB
        assert spec.cache_bytes is None

    def test_from_string_with_cache(self):
        spec = TierSpec.from_value("nand:1TB:8MiB")
        assert spec.capacity_bytes == 1 * TB
        assert spec.cache_bytes == 8 * MIB

    def test_from_mapping(self):
        spec = TierSpec.from_value(
            {"technology": "optane", "capacity": "400GB", "cache": 4096, "devices": 2}
        )
        assert spec.technology is Technology.OPTANE_SSD
        assert spec.num_devices == 2
        assert spec.cache_bytes == 4096

    def test_mapping_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown tier keys"):
            TierSpec.from_value({"technology": "nand", "iops": 5})

    def test_conflicting_alias_keys_rejected(self):
        # Both spellings present would make a sweep over the alias silently
        # no-op (the canonical key wins) — it must be an error instead.
        with pytest.raises(ValueError, match="both 'capacity'"):
            TierSpec.from_value(
                {"technology": "nand", "capacity": "1GiB", "capacity_bytes": "2GiB"}
            )
        with pytest.raises(ValueError, match="both 'cache'"):
            TierSpec.from_value(
                {"technology": "nand", "capacity": "1GiB", "cache": 1, "cache_bytes": 2}
            )

    def test_bare_technology_uses_table1_capacity(self):
        spec = TierSpec.from_value("zssd")
        assert spec.capacity_bytes == TABLE1_SPECS[Technology.ZSSD].capacity_bytes

    def test_empty_capacity_segment_keeps_its_slot(self):
        # "dram::64KiB" = default (zero) budget with a 64KiB cache; the cache
        # value must not silently shift into the capacity slot.
        spec = TierSpec.from_value("dram::64KiB")
        assert spec.capacity_bytes == 0
        assert spec.cache_bytes == 64 * KIB
        nand = TierSpec.from_value("nand::8MiB")
        assert nand.capacity_bytes == TABLE1_SPECS[Technology.NAND_FLASH].capacity_bytes
        assert nand.cache_bytes == 8 * MIB
        with pytest.raises(ValueError, match="tier string"):
            TierSpec.from_value(":1GiB")

    def test_device_tier_needs_capacity(self):
        with pytest.raises(ValueError, match="positive capacity"):
            TierSpec(technology=Technology.NAND_FLASH, capacity_bytes=0)

    def test_fast_tier_allows_zero_capacity(self):
        assert TierSpec(technology=Technology.DRAM, capacity_bytes=0).is_fast

    def test_round_trips_through_dict(self):
        spec = TierSpec.from_value("cxl:1GiB:4MiB")
        assert TierSpec.from_value(spec.to_dict()) == spec


class TestParseTiers:
    def test_comma_string(self):
        tiers = parse_tiers("dram:4GiB,cxl:32GiB,nand:1TiB")
        assert [t.technology for t in tiers] == [
            Technology.DRAM,
            Technology.CXL_3DXP,
            Technology.NAND_FLASH,
        ]
        assert tiers[0].is_fast and not tiers[1].is_fast

    def test_list_of_mixed_entries(self):
        tiers = parse_tiers(
            ["dram:1MiB", {"technology": "nand", "capacity": "1GiB"}]
        )
        assert len(tiers) == 2

    def test_tier0_must_be_fast(self):
        with pytest.raises(ValueError, match="tier 0 must be fast memory"):
            parse_tiers("nand:1TiB,dram:4GiB")

    def test_later_tiers_must_be_devices(self):
        with pytest.raises(ValueError, match="must be a device tier"):
            parse_tiers("dram:4GiB,dram:8GiB")

    def test_single_tier_rejected(self):
        with pytest.raises(ValueError, match="at least 2 tiers"):
            parse_tiers("dram:4GiB")

    def test_none_is_empty(self):
        assert parse_tiers(None) == ()


class TestRuntimeTiers:
    def test_build_tiers_unique_device_seeds(self):
        tiers = build_tiers(
            parse_tiers("dram:1MiB,cxl:64MiB,nand:1GiB"), seed=7
        )
        assert isinstance(tiers[0], FastTier)
        assert all(isinstance(t, DeviceTier) for t in tiers[1:])
        seeds = [seed for t in tiers[1:] for seed in t.device_seeds]
        assert len(seeds) == len(set(seeds))

    def test_device_capacity_split_across_devices(self):
        spec = TierSpec.from_value({"technology": "nand", "capacity": 8 * MIB, "devices": 2})
        tier = DeviceTier(spec)
        assert len(tier.devices) == 2
        assert all(d.spec.capacity_bytes == 4 * MIB for d in tier.devices)

    def test_segment_read_round_trip(self):
        spec = TierSpec.from_value("nand:1MiB")
        tier = DeviceTier(spec)
        rows = {i: bytes([i % 256] * 64) for i in range(100)}
        tier.add_segment("t", 0, 100, 64, row_source=lambda s: rows[s], whole_table=True)
        reads = tier.read_rows("t", [3, 97, 11], start_time=0.0)
        assert [r.data for r in reads] == [rows[3], rows[97], rows[11]]
        assert tier.stats.ios == 3
        assert tier.stats.bytes_served == 3 * 64

    def test_multi_segment_resolution(self):
        spec = TierSpec.from_value("nand:1MiB")
        tier = DeviceTier(spec)
        tier.add_segment("t", 100, 200, 64, row_source=lambda s: bytes([1] * 64))
        tier.add_segment("t", 300, 350, 64, row_source=lambda s: bytes([2] * 64))
        reads = tier.read_rows("t", [150, 320], start_time=0.0)
        assert reads[0].data[0] == 1
        assert reads[1].data[0] == 2
        with pytest.raises(KeyError):
            tier.read_rows("t", [250], start_time=0.0)

    def test_cost_model(self):
        from repro.hierarchy import cost_factor, memory_cost_dram_gb, pareto_frontier
        from repro.sim.units import GB

        assert cost_factor("dram") == 1.0
        assert cost_factor("pcie_nand_flash") == pytest.approx(1 / 30)
        with pytest.raises(KeyError, match="no cost factor"):
            cost_factor("hdd")
        tiers = [
            {"technology": "dram", "data_bytes": GB, "cache_capacity_bytes": 0},
            {"technology": "pcie_nand_flash", "data_bytes": 30 * GB,
             "cache_capacity_bytes": 0},
        ]
        assert memory_cost_dram_gb(tiers) == pytest.approx(2.0)
        points = [("a", 1.0, 5.0), ("b", 2.0, 1.0), ("c", 3.0, 3.0)]
        frontier = pareto_frontier(
            points, cost=lambda p: p[1], latency=lambda p: p[2]
        )
        assert [p[0] for p in frontier] == ["a", "b"]  # c dominated by b

    def test_tier_stats_merge(self):
        a = TierStats(cache_probes=4, cache_hits=2, rows_served=3, bytes_served=10, ios=1)
        b = TierStats(cache_probes=6, cache_hits=1)
        a.merge(b)
        assert a.cache_probes == 10 and a.cache_hits == 3
        assert a.cache_hit_rate == pytest.approx(0.3)
