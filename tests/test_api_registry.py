"""Tests for the pluggable embedding-backend registry."""

import numpy as np
import pytest

from repro.api import (
    BackendRegistryError,
    DuplicateBackendError,
    UnknownBackendError,
    available_backends,
    backend_registered,
    create_backend,
    register_backend,
    sdm_config_from_options,
    unregister_backend,
)
from repro.core import SoftwareDefinedMemory
from repro.core.config import AccessPathKind
from repro.core.placement import PlacementPolicy
from repro.dlrm import ComputeSpec, InMemoryBackend
from repro.dlrm.inference import EmbeddingBackend
from repro.storage import Technology

from helpers import small_model


@pytest.fixture
def model():
    return small_model()


class TestBuiltinBackends:
    def test_builtins_registered(self):
        backends = available_backends()
        for name in ("dram", "sdm", "pooled"):
            assert name in backends
            assert backends[name]  # every built-in carries a description
            assert backend_registered(name)

    def test_create_dram(self, model):
        backend = create_backend("dram", model)
        assert isinstance(backend, InMemoryBackend)

    def test_create_sdm_with_options(self, model):
        backend = create_backend(
            "sdm",
            model,
            num_devices=3,
            row_cache_capacity_bytes=256 * 1024,
            pooled_cache_capacity_bytes=128 * 1024,
        )
        assert isinstance(backend, SoftwareDefinedMemory)
        assert len(backend.devices) == 3

    def test_create_pooled_every_request_eligible(self, model):
        backend = create_backend("pooled", model)
        assert isinstance(backend, SoftwareDefinedMemory)
        assert backend.pooled_cache is not None
        assert backend.config.pooled_len_threshold == 0

    def test_pooled_rejects_disabling_its_cache(self, model):
        with pytest.raises(ValueError, match="pooled_cache_enabled"):
            create_backend("pooled", model, pooled_cache_enabled=False)

    def test_dram_rejects_options(self, model):
        with pytest.raises(ValueError, match="takes no options"):
            create_backend("dram", model, num_devices=2)

    def test_sdm_rejects_unknown_options(self, model):
        with pytest.raises(ValueError, match="unknown SDM options"):
            create_backend("sdm", model, not_a_knob=1)

    def test_sdm_backend_serves_same_scores_as_dram(self, model):
        compute = ComputeSpec()
        sdm = create_backend(
            "sdm", model, compute,
            row_cache_capacity_bytes=256 * 1024,
            pooled_cache_capacity_bytes=128 * 1024,
        )
        dram = create_backend("dram", model, compute)
        request = {"user_0": [1, 5, 9], "user_1": [3, 4]}
        pooled_sdm, _ = sdm.pooled_embeddings(request, 0.0)
        pooled_dram, _ = dram.pooled_embeddings(request, 0.0)
        for table in request:
            np.testing.assert_allclose(
                pooled_sdm[table], pooled_dram[table], rtol=1e-4, atol=1e-5
            )


class TestOptionCoercion:
    def test_enum_fields_accept_strings(self):
        config = sdm_config_from_options(
            {
                "device_technology": "pcie_3dxp_optane",
                "placement_policy": "fixed_fm_sm",
                "access_path": "mmap",
            }
        )
        assert config.device_technology is Technology.OPTANE_SSD
        assert config.placement_policy is PlacementPolicy.FIXED_FM_SM
        assert config.access_path is AccessPathKind.MMAP

    def test_enum_fields_accept_names_case_insensitive(self):
        config = sdm_config_from_options({"device_technology": "nand_flash"})
        assert config.device_technology is Technology.NAND_FLASH

    def test_bad_enum_value_lists_choices(self):
        with pytest.raises(ValueError, match="not a valid Technology"):
            sdm_config_from_options({"device_technology": "floppy_disk"})

    def test_defaults_overridden_by_options(self):
        config = sdm_config_from_options({"num_devices": 4}, num_devices=2, seed=7)
        assert config.num_devices == 4
        assert config.seed == 7

    def test_pinned_tables_coerced_to_tuple(self):
        config = sdm_config_from_options({"pinned_fm_tables": ["user_0"]})
        assert config.pinned_fm_tables == ("user_0",)


class TestRegistration:
    def test_unknown_backend_error_names_known(self, model):
        with pytest.raises(UnknownBackendError, match="sdm"):
            create_backend("no-such-backend", model)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(DuplicateBackendError, match="already registered"):

            @register_backend("sdm")
            def clash(model, compute, **options):  # pragma: no cover
                raise AssertionError("never called")

    def test_custom_backend_plugs_in(self, model):
        @register_backend("custom-dram", description="test plug-in")
        def build(inner_model, compute, **options):
            return InMemoryBackend(inner_model.tables, compute)

        try:
            assert "custom-dram" in available_backends()
            backend = create_backend("custom-dram", model)
            assert isinstance(backend, InMemoryBackend)
        finally:
            unregister_backend("custom-dram")
        assert not backend_registered("custom-dram")

    def test_overwrite_replaces_factory(self, model):
        @register_backend("victim")
        def first(inner_model, compute, **options):  # pragma: no cover
            raise AssertionError("replaced")

        try:

            @register_backend("victim", overwrite=True)
            def second(inner_model, compute, **options):
                return InMemoryBackend(inner_model.tables, compute)

            assert isinstance(create_backend("victim", model), InMemoryBackend)
        finally:
            unregister_backend("victim")

    def test_factory_must_return_embedding_backend(self, model):
        @register_backend("broken")
        def build(inner_model, compute, **options):
            return object()

        try:
            with pytest.raises(BackendRegistryError, match="not an EmbeddingBackend"):
                create_backend("broken", model)
        finally:
            unregister_backend("broken")

    def test_unregister_unknown_raises(self):
        with pytest.raises(UnknownBackendError):
            unregister_backend("never-registered")

    def test_registered_backend_is_abc_compatible(self, model):
        assert isinstance(create_backend("sdm", model), EmbeddingBackend)
