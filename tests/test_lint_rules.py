"""Per-rule fixture tests: each rule fires on its bad fixture, stays quiet on
its good one, and the whole repository's lintable surface is clean."""

from pathlib import Path

import pytest

from repro.lint import get_rules, lint_paths, lint_source

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO_ROOT = Path(__file__).parent.parent

RULE_IDS = ["DET001", "DET002", "FROZEN001", "METRIC001", "PAR001", "SPEC001", "UNIT001"]


def lint_fixture(rule_id, which):
    path = FIXTURES / rule_id.lower() / f"{which}.py"
    source = path.read_text(encoding="utf-8")
    # is_library=True so the determinism rules fire on fixtures too.
    return lint_source(source, str(path), rules=get_rules([rule_id]), is_library=True)


class TestFixturePairs:
    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_bad_fixture_yields_findings_for_its_rule(self, rule_id):
        findings = lint_fixture(rule_id, "bad")
        assert findings, f"{rule_id} found nothing in its bad fixture"
        assert {f.rule for f in findings} == {rule_id}
        for finding in findings:
            assert finding.line >= 1
            assert finding.column >= 1
            assert rule_id in finding.render()

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_good_fixture_is_clean(self, rule_id):
        assert lint_fixture(rule_id, "good") == []


class TestRuleSpecifics:
    def test_det001_flags_every_wall_clock_idiom(self):
        findings = lint_fixture("DET001", "bad")
        messages = "\n".join(f.message for f in findings)
        assert "time.time()" in messages
        assert "time.monotonic()" in messages
        assert "datetime.datetime.now()" in messages
        assert "time.sleep()" in messages

    def test_det001_is_library_only(self):
        source = "import time\nelapsed = time.time()\n"
        assert lint_source(source, "examples/demo.py", is_library=False) == []
        assert lint_source(source, "src/repro/sim/x.py", is_library=True)

    def test_det001_allows_the_audited_obs_profile_module(self):
        # repro/obs/profile.py is the one allow-listed wall-clock module.
        source = "import time\n\ndef wall_seconds():\n    return time.perf_counter()\n"
        assert lint_source(source, "src/repro/obs/profile.py", is_library=True) == []

    def test_det001_allow_list_is_exactly_one_module(self):
        # The same wall read anywhere else in the package — including the
        # rest of repro.obs — still fires.
        source = "import time\nstarted = time.perf_counter()\n"
        for path in (
            "src/repro/obs/metrics.py",
            "src/repro/obs/trace.py",
            "src/repro/serving/engine.py",
            "src/repro/core/profile.py",  # same basename, wrong package
        ):
            findings = lint_source(source, path, is_library=True)
            assert [f.rule for f in findings] == ["DET001"], path

    def test_det001_does_not_flag_wall_seconds_callers(self):
        # Library code may *call* the audited module; only direct time.*
        # reads are findings.
        source = (
            "from repro.obs.profile import wall_seconds\n"
            "started = wall_seconds()\n"
        )
        assert lint_source(source, "src/repro/api/cli.py", is_library=True) == []

    def test_det002_distinguishes_seeded_default_rng(self):
        seeded = "import numpy as np\nrng = np.random.default_rng(42)\n"
        unseeded = "import numpy as np\nrng = np.random.default_rng()\n"
        assert lint_source(seeded, "src/repro/x.py", is_library=True) == []
        findings = lint_source(unseeded, "src/repro/x.py", is_library=True)
        assert [f.rule for f in findings] == ["DET002"]

    def test_unit001_reports_mixing_and_magic_sizes(self):
        findings = lint_fixture("UNIT001", "bad")
        messages = [f.message for f in findings]
        assert any("mixes decimal" in m for m in messages)
        assert any("1073741824" in m and "GIB" in m for m in messages)
        assert any("4096" in m for m in messages)
        assert any("1048576" in m for m in messages)  # 1024 * 1024 at the root

    def test_unit001_ignores_unit_multipliers_and_counts(self):
        source = (
            "from repro.sim.units import GB\n"
            "capacity_bytes = 1000 * GB\n"
            "batch_size = 1000\n"
        )
        assert lint_source(source, "src/repro/x.py") == []

    def test_spec001_catches_the_issue_example(self):
        findings = lint_fixture("SPEC001", "bad")
        snippets = [f.snippet for f in findings]
        assert any("capactiy" in s for s in snippets)
        assert any("tiers.first.capacity" in s for s in snippets)

    def test_metric001_direction_suffix(self):
        findings = lint_fixture("METRIC001", "bad")
        assert any("sideways" in f.message for f in findings)
        assert any("p98" in f.message or "p98" in f.snippet for f in findings)

    def test_frozen001_counts_every_violation_kind(self):
        findings = lint_fixture("FROZEN001", "bad")
        messages = [f.message for f in findings]
        assert any("mutable default" in m and "tags" in m for m in messages)
        assert any("mutable default" in m and "options" in m for m in messages)
        assert any("assignment to self.name" in m for m in messages)
        assert any("object.__setattr__" in m for m in messages)

    def test_par001_names_the_closure(self):
        findings = lint_fixture("PAR001", "bad")
        messages = [f.message for f in findings]
        assert any("'worker'" in m for m in messages)
        assert sum("lambda" in m for m in messages) == 2


class TestRepositoryIsClean:
    def test_src_examples_benchmarks_have_no_findings(self):
        paths = [str(REPO_ROOT / name) for name in ("src", "examples", "benchmarks")]
        findings = lint_paths([p for p in paths if Path(p).exists()])
        assert findings == [], "\n".join(f.render() for f in findings)
