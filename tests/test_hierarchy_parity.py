"""Parity and end-to-end tests for the N-tier refactor.

The load-bearing guarantees:

* the default two-tier spec produces **bit-identical** ScenarioResult
  metrics whether the tier chain is configured implicitly (legacy
  ``device_technology``/``num_devices`` fields) or explicitly (an equivalent
  ``tiers`` list) — i.e. the refactor is a pure generalisation;
* a ``dram,cxl,nand`` 3-tier scenario runs end-to-end through both
  :meth:`Session.run` and the CLI with per-tier hit rates in the output;
* the batched NumPy decode path is exactly equal to the per-row reference.
"""

import json

import numpy as np
import pytest

from repro.api import ScenarioSpec, Session
from repro.api.cli import main as cli_main
from repro.api.spec import BackendChoice
from repro.core.sdm import SoftwareDefinedMemory
from repro.dlrm.quantization import dequantize_rows, quantize_rows

from helpers import (
    reference_pooled,
    small_model,
    small_queries,
    small_sdm_config,
)

THREE_TIERS = "dram:8KiB,cxl:8KiB:4KiB,nand:64MiB"


def _serve_many(sdm, model, count=50):
    for query in small_queries(model, count):
        sdm.pooled_embeddings(query.user_indices, 0.0)
        sdm.on_query_complete()


class TestTwoTierParity:
    """The classic stack is a bit-identical special case of the chain."""

    def test_explicit_tiers_match_legacy_exactly(self):
        spec = ScenarioSpec(
            name="parity",
            backend=BackendChoice(
                name="sdm",
                options={"num_devices": 2, "row_cache_capacity_bytes": 256 * 1024},
            ),
        )
        legacy = Session(spec).run().to_dict()

        config = small_sdm_config(num_devices=2)
        tiers = [tier.to_dict() for tier in config.resolved_tiers()]
        explicit = Session(
            spec.replace("backend.options.tiers", tiers)
        ).run().to_dict()
        assert legacy == explicit

    def test_sdm_stats_identical_through_chain(self):
        model_a, model_b = small_model(num_user=3), small_model(num_user=3)
        legacy = SoftwareDefinedMemory(model_a, small_sdm_config())
        explicit = SoftwareDefinedMemory(
            model_b,
            small_sdm_config(
                tiers=[t.to_dict() for t in small_sdm_config().resolved_tiers()]
            ),
        )
        for query in small_queries(model_a, 40):
            pooled_a, done_a = legacy.pooled_embeddings(query.user_indices, 0.0)
            pooled_b, done_b = explicit.pooled_embeddings(query.user_indices, 0.0)
            assert done_a == done_b  # bit-identical simulated time
            for name in pooled_a:
                np.testing.assert_array_equal(pooled_a[name], pooled_b[name])
        assert legacy.stats.sm_ios == explicit.stats.sm_ios
        assert legacy.row_cache_hit_rate == explicit.row_cache_hit_rate
        assert legacy.fm_footprint_bytes() == explicit.fm_footprint_bytes()
        assert legacy.sm_footprint_bytes() == explicit.sm_footprint_bytes()

    def test_legacy_results_report_two_tiers(self):
        spec = ScenarioSpec.from_dict(
            {"workload": {"num_queries": 20}, "serving": {"warmup_queries": 0}}
        )
        result = Session(spec).run()
        assert result.tiers is not None and len(result.tiers) == 2
        assert result.tiers[0]["technology"] == "dram"
        assert result.tiers[1]["ios"] > 0


class TestThreeTierEndToEnd:
    def test_session_run_reports_per_tier_hit_rates(self):
        spec = ScenarioSpec.from_dict(
            {
                "name": "3tier",
                "model": {"max_rows_per_table": 256},
                "backend": {
                    "name": "tiered",
                    "options": {
                        "tiers": "dram:48KiB,cxl:48KiB:8KiB,nand:64MiB",
                        "row_cache_capacity_bytes": 64 * 1024,
                    },
                },
                "workload": {"num_queries": 60},
                "serving": {"warmup_queries": 0},
            }
        )
        result = Session(spec).run()
        assert result.tiers is not None and len(result.tiers) == 3
        technologies = [tier["technology"] for tier in result.tiers]
        assert technologies == ["dram", "cxl_3dxp", "pcie_nand_flash"]
        assert result.tiers[0]["cache_hit_rate"] is not None
        # Both device tiers actually served rows in this geometry.
        assert result.tiers[1]["rows_served"] > 0
        assert result.tiers[2]["rows_served"] > 0
        rows = result.summary_table()
        assert "tier1 (cxl_3dxp)" in rows and "tier2 (pcie_nand_flash)" in rows

    def test_three_tier_numerics_match_dram_reference(self):
        model = small_model(num_user=3, num_item=1)
        sdm = SoftwareDefinedMemory(model, small_sdm_config(tiers=THREE_TIERS))
        for query in small_queries(model, 50):
            pooled, _ = sdm.pooled_embeddings(query.user_indices, 0.0)
            for name, vector in reference_pooled(model, query).items():
                np.testing.assert_allclose(pooled[name], vector, rtol=1e-5, atol=1e-6)

    def test_row_split_numerics_match_dram_reference(self):
        model = small_model(num_user=3, num_item=1)
        sdm = SoftwareDefinedMemory(
            model,
            small_sdm_config(
                tiers="dram:8KiB,cxl:8KiB,nand:64MiB",
                split_rows=True,
                pooled_cache_enabled=False,
            ),
        )
        assert any(
            decision.is_split
            for decision in sdm.tiered_placement.decisions.values()
        )
        for query in small_queries(model, 50):
            pooled, _ = sdm.pooled_embeddings(query.user_indices, 0.0)
            for name, vector in reference_pooled(model, query).items():
                np.testing.assert_allclose(pooled[name], vector, rtol=1e-5, atol=1e-6)

    def test_middle_tier_is_faster_than_bottom_tier(self):
        """A table homed on CXL completes strictly faster than on NAND."""
        model = small_model(num_user=1, num_item=0)
        on_cxl = SoftwareDefinedMemory(
            model,
            small_sdm_config(tiers="dram:0,cxl:64MiB", pooled_cache_enabled=False),
        )
        on_nand = SoftwareDefinedMemory(
            small_model(num_user=1, num_item=0),
            small_sdm_config(tiers="dram:0,nand:64MiB", pooled_cache_enabled=False),
        )
        query = small_queries(model, 1)[0]
        _, cxl_done = on_cxl.pooled_embeddings(query.user_indices, 0.0)
        _, nand_done = on_nand.pooled_embeddings(query.user_indices, 0.0)
        assert cxl_done < nand_done

    def test_cli_three_tier_run_json(self, capsys):
        assert (
            cli_main(
                [
                    "run",
                    "--rows", "256",
                    "--queries", "40",
                    "--warmup", "0",
                    "--tiers", "dram:48KiB,cxl:48KiB:8KiB,nand:64MiB",
                    "--option", "row_cache_capacity_bytes=65536",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "tiered"
        assert len(payload["tiers"]) == 3
        assert payload["tiers"][0]["cache_hit_rate"] is not None
        assert payload["tiers"][1]["rows_served"] > 0

    def test_cli_list_devices(self, capsys):
        assert cli_main(["list-devices", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        technologies = {entry["technology"] for entry in payload}
        assert "pcie_nand_flash" in technologies and "cxl_3dxp" in technologies
        nand = next(e for e in payload if e["technology"] == "pcie_nand_flash")
        assert "nand" in nand["aliases"]
        assert nand["cost_per_gb_vs_dram"] < 1.0

    def test_cli_tier_sweep_dotted_path(self, capsys):
        assert (
            cli_main(
                [
                    "sweep",
                    "--param", "tiers.1.capacity",
                    "--values", "8KiB,1MiB",
                    "--tiers", "dram:0,cxl:8KiB,nand:64MiB",
                    "--rows", "256",
                    "--queries", "20",
                    "--warmup", "0",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert [point["value"] for point in payload] == ["8KiB", "1MiB"]
        served = [point["result"]["tiers"][1]["rows_served"] for point in payload]
        assert served[1] > served[0]  # larger CXL tier homes more tables


class TestPromotionPolicies:
    def _run(self, promotion):
        model = small_model(num_user=3, num_item=0)
        sdm = SoftwareDefinedMemory(
            model,
            small_sdm_config(
                tiers=THREE_TIERS,
                promotion=promotion,
                pooled_cache_enabled=False,
            ),
        )
        _serve_many(sdm, model, 40)
        return sdm

    def test_promotion_none_leaves_caches_cold(self):
        sdm = self._run("none")
        assert sdm.row_cache.item_count == 0
        # Every SM-homed lookup goes to a device when nothing is promoted.
        assert sdm.stats.sm_ios == sdm.stats.sm_row_lookups

    def test_promotion_top_fills_only_fastest_cache(self):
        sdm = self._run("top")
        assert sdm.row_cache.item_count > 0
        middle = sdm.tiers[1]
        assert middle.cache is not None and middle.cache.item_count == 0

    def test_promotion_all_fills_middle_cache_too(self):
        sdm = self._run("all")
        middle = sdm.tiers[1]
        assert middle.cache is not None and middle.cache.item_count > 0

    def test_default_promotion_makes_device_caches_functional(self):
        # The default must be "all": a configured middle-tier cache that can
        # structurally never fill would be probe overhead plus charged cost.
        assert small_sdm_config().promotion == "all"
        model = small_model(num_user=3, num_item=0)
        sdm = SoftwareDefinedMemory(
            model, small_sdm_config(tiers=THREE_TIERS, pooled_cache_enabled=False)
        )
        _serve_many(sdm, model, 40)
        middle = sdm.tiers[1]
        if any(
            segment.tier > 1
            for decision in sdm.tiered_placement.decisions.values()
            for segment in decision.segments
        ):
            assert middle.cache is not None and middle.cache.item_count > 0

    def test_unknown_promotion_rejected(self):
        with pytest.raises(ValueError, match="promotion"):
            small_sdm_config(promotion="sideways")

    def test_mid_tier_cache_hit_pays_media_time_and_repromotes(self):
        from repro.cache.unified import UnifiedCacheConfig, UnifiedRowCache
        from repro.hierarchy import (
            DeviceTier,
            FastTier,
            TierChain,
            TieredPlacement,
            TieredTablePlacement,
            TierSegment,
            TierSpec,
        )

        fast_cache = UnifiedRowCache(UnifiedCacheConfig(capacity_bytes=4096))
        fast = FastTier(TierSpec.from_value("dram:0"), cache=fast_cache)
        mid = DeviceTier(
            TierSpec.from_value("cxl:64KiB:16KiB"),
            cache_config=UnifiedCacheConfig(capacity_bytes=16 * 1024),
        )
        slow = DeviceTier(TierSpec.from_value("nand:1MiB"))
        assert mid.cache_hit_seconds(64) > 0.0
        slow.add_segment("t", 0, 16, 64, lambda s: bytes([s] * 64), whole_table=True)
        placement = TieredPlacement(num_tiers=3)
        placement.add(
            TieredTablePlacement(
                table_name="t",
                segments=(TierSegment(tier=2, start=0, end=16),),
                cache_enabled=True,
            )
        )
        chain = TierChain(
            [fast, mid, slow], placement,
            promotion="all", cache_probe_seconds=1e-7,
        )
        # First fetch: NAND read, filled into both upper caches.
        chain.fetch_rows("t", [(0, 3)], 0.0)
        assert fast_cache.item_count == 1 and mid.cache.item_count == 1
        # Evict from tier 0; the next access hits tier 1's cache, pays its
        # media time on top of the probes, and re-promotes into tier 0.
        fast_cache.clear()
        outcome = chain.fetch_rows("t", [(0, 3)], 0.0)
        assert outcome.cache_hits == 1 and outcome.device_reads == 0
        assert outcome.completion_time > 2 * 1e-7  # probes + CXL media time
        assert fast_cache.item_count == 1  # re-promoted


class TestStrictConfiguration:
    def test_partial_placement_fails_at_serve_not_silently(self):
        from repro.hierarchy import TieredPlacement, TieredTablePlacement, TierSegment

        model = small_model(num_user=2, num_item=0)
        partial = TieredPlacement(num_tiers=2)
        partial.add(
            TieredTablePlacement(
                table_name="user_0",
                segments=(TierSegment(tier=1, start=0, end=256),),
                cache_enabled=True,
            )
        )
        sdm = SoftwareDefinedMemory(
            model, small_sdm_config(tiers="dram:0,nand:64MiB"), placement=partial
        )
        with pytest.raises(KeyError, match="user_1"):
            sdm.pooled_embeddings({"user_1": [1, 2]}, 0.0)

    def test_empty_tiers_value_rejected(self):
        with pytest.raises(ValueError, match="names no tiers"):
            small_sdm_config(tiers="")
        with pytest.raises(ValueError, match="names no tiers"):
            small_sdm_config(tiers=[])
        assert small_sdm_config(tiers=None).tiers is None

    def test_single_tier_spec_and_non_iterable_rejected_clearly(self):
        from repro.hierarchy import TierSpec, parse_tiers
        from repro.storage.spec import Technology

        with pytest.raises(ValueError, match="ordered list"):
            parse_tiers(TierSpec(technology=Technology.DRAM, capacity_bytes=0))
        with pytest.raises(ValueError, match="comma string"):
            parse_tiers(42)

    def test_split_rows_without_tiers_rejected(self):
        with pytest.raises(ValueError, match="split_rows requires"):
            small_sdm_config(split_rows=True)
        assert small_sdm_config(
            tiers="dram:0,nand:64MiB", split_rows=True
        ).split_rows


class TestVectorisedDecodeParity:
    """The batched decode path is exactly the per-row reference (satellite)."""

    @pytest.mark.parametrize("bits", [8, 4])
    def test_quantized_batch_equals_per_row(self, bits):
        rng = np.random.default_rng(3)
        dim = 24
        values = rng.normal(0, 0.3, size=(64, dim)).astype(np.float32)
        rows = quantize_rows(values, bits=bits)
        batch = dequantize_rows(rows, dim, bits)
        for index in range(rows.shape[0]):
            single = dequantize_rows(rows[index][None, :], dim, bits)[0]
            np.testing.assert_array_equal(batch[index], single)

    def test_sdm_decoders_agree(self):
        model = small_model(num_user=1, num_item=0)
        sdm = SoftwareDefinedMemory(
            model, small_sdm_config(pooled_cache_enabled=False)
        )
        state = sdm._sm_tables["user_0"]
        raws = [
            model.table("user_0").row_bytes_at(index) for index in range(16)
        ]
        matrix = np.frombuffer(b"".join(raws), dtype=np.uint8).reshape(16, -1)
        batch = state.decode_batch(matrix)
        for position, raw in enumerate(raws):
            np.testing.assert_array_equal(batch[position], state.decode(raw))

    def test_float_batch_decoder_round_trips(self):
        rows = np.random.default_rng(0).normal(size=(8, 12)).astype(np.float32)
        matrix = np.frombuffer(rows.tobytes(), dtype=np.uint8).reshape(8, -1)
        decoded = SoftwareDefinedMemory._decode_float_batch(matrix)
        np.testing.assert_array_equal(decoded, rows)


class TestSpecTierPaths:
    def test_tiers_alias_rewrites_to_backend_options(self):
        spec = ScenarioSpec(
            backend=BackendChoice(
                name="tiered",
                options={"tiers": [{"technology": "dram", "capacity": 0},
                                   {"technology": "nand", "capacity": "1GiB"}]},
            )
        )
        replaced = spec.replace("tiers.1.capacity", "2GiB")
        assert replaced.backend.options["tiers"][1]["capacity"] == "2GiB"
        # untouched entries and the original spec are unchanged
        assert replaced.backend.options["tiers"][0] == {"technology": "dram", "capacity": 0}
        assert spec.backend.options["tiers"][1]["capacity"] == "1GiB"

    def test_string_form_tiers_are_sweepable(self):
        # The README quickstart stores tiers as a compact string; positional
        # paths must normalise it instead of failing to descend.
        spec = ScenarioSpec(
            backend=BackendChoice(
                name="tiered",
                options={"tiers": "dram:64KiB,cxl:1MiB:64KiB,nand:1GiB"},
            )
        )
        replaced = spec.replace("tiers.1.capacity", "256KiB")
        tiers = replaced.backend.options["tiers"]
        assert isinstance(tiers, list)
        assert tiers[1]["capacity"] == "256KiB"
        assert tiers[2]["technology"] == "pcie_nand_flash"
        Session(replaced).backend  # builds cleanly

    def test_nested_path_errors_are_clear(self):
        spec = ScenarioSpec()
        with pytest.raises(ValueError, match="not set on the spec"):
            spec.replace("tiers.1.capacity", "2GiB")
        spec = spec.replace("backend.options.tiers", [{"technology": "dram"}])
        with pytest.raises(ValueError, match="out of range"):
            spec.replace("tiers.7.capacity", "2GiB")
        with pytest.raises(ValueError, match="list index"):
            spec.replace("tiers.first.capacity", "2GiB")

    def test_tier_spec_round_trips_through_json(self):
        spec = ScenarioSpec(
            backend=BackendChoice(
                name="tiered",
                options={"tiers": [{"technology": "dram", "capacity": "8KiB"},
                                   {"technology": "nand", "capacity": "64MiB"}]},
            )
        )
        restored = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec
        assert restored.spec_hash() == spec.spec_hash()
