"""Golden-file tests: the Chrome-trace export and the timeline JSON schema.

The goldens pin the *byte-stable serialised form* of both artifacts for one
tiny deterministic scenario, so accidental schema drift (renamed keys,
reordered metadata, changed units) fails loudly.  To regenerate after an
intentional schema change::

    REGEN_OBS_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_obs_golden.py

and review the diff like any other code change."""

import json
import os
from pathlib import Path

import pytest

from repro.api import ScenarioSpec, Session, TelemetrySpec
from repro.api.spec import ServingChoice, TrafficSpec, WorkloadChoice
from repro.obs.trace import validate_chrome_trace

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Small, fully deterministic, and exercising both tiers and the open loop.
GOLDEN_SPEC = ScenarioSpec(
    name="obs-golden",
    workload=WorkloadChoice(num_queries=24),
    serving=ServingChoice(concurrency=2, warmup_queries=4),
    traffic=TrafficSpec(
        mode="open", arrival="constant", offered_qps=500.0, queue_depth=4
    ),
    telemetry=TelemetrySpec(trace=True, sample_interval=0.01),
)


@pytest.fixture(scope="module")
def golden_result():
    return Session(GOLDEN_SPEC).run()


def _check_against_golden(name: str, payload):
    path = GOLDEN_DIR / name
    encoded = json.dumps(payload, indent=2, sort_keys=True)
    if os.environ.get("REGEN_OBS_GOLDEN"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(encoded + "\n", encoding="utf-8")
    assert path.exists(), (
        f"golden file {path} missing; regenerate with REGEN_OBS_GOLDEN=1"
    )
    assert json.loads(path.read_text(encoding="utf-8")) == json.loads(encoded), (
        f"{name} drifted from its golden; if intentional, regenerate with "
        f"REGEN_OBS_GOLDEN=1 and review the diff"
    )


class TestChromeTraceGolden:
    def test_trace_matches_golden(self, golden_result):
        _check_against_golden("obs_trace.json", golden_result.trace)

    def test_trace_is_loadable(self, golden_result):
        validate_chrome_trace(golden_result.trace)
        # And the golden on disk validates too (belt and braces: this is the
        # file contract external tooling loads).
        validate_chrome_trace(
            json.loads((GOLDEN_DIR / "obs_trace.json").read_text(encoding="utf-8"))
        )

    def test_trace_covers_every_layer(self, golden_result):
        categories = {
            e.get("cat")
            for e in golden_result.trace["traceEvents"]
            if e["ph"] != "M"
        }
        # engine (serve/queue), chain (walk), storage (io:*), sdm (fetch/...)
        assert {"engine", "chain", "storage", "sdm"} <= categories


class TestTimelineGolden:
    def test_timeline_matches_golden(self, golden_result):
        _check_against_golden("obs_timeline.json", golden_result.timeline)

    def test_timeline_schema(self, golden_result):
        timeline = golden_result.timeline
        assert set(timeline) == {"interval_seconds", "num_windows", "windows"}
        assert timeline["num_windows"] == len(timeline["windows"])
        for window in timeline["windows"]:
            assert set(window) == {"index", "start", "end", "counters", "gauges"}
            assert window["end"] > window["start"]
