"""Bit-exact parity between the scalar and batched serve cores.

``serve_mode="batched"`` is an execution strategy, not a model change:
for every supported configuration the batched tier-chain gather must
produce bitwise-identical pooled embeddings, identical completion
times, and identical statistics (SDM counters, per-tier serving stats,
row-cache counters *and* eviction order) to the scalar per-row walk.
This is the oracle that lets the scalar path act as a safety net — any
configuration the batched path cannot serve identically must fall back,
never diverge.
"""

import numpy as np
import pytest

from repro.core import SDMConfig, SoftwareDefinedMemory
from repro.core.config import AccessPathKind
from repro.dlrm import DLRMModel, EmbeddingTable, EmbeddingTableSpec, MLP
from repro.dlrm.pruning import prune_table
from repro.storage import IOEngineConfig
from repro.workload import QueryGenerator, WorkloadConfig

NUM_QUERIES = 40

# Configuration axes the batched gather must cover (or detect and fall
# back from): quantisation width, pruning (with and without depruning),
# access path, tier count, promotion policy, row splitting, cache
# partitioning, a cache small enough to force evictions mid-stream,
# queue-depth limits tight enough to throttle mid-batch, and the
# full-block (no sub-block SGL) transfer path with its memcpy accounting.
VARIANTS = {
    "default": {},
    "pooled-off": {"pooled_cache_enabled": False},
    "quant-4bit": {"quant_bits": 4},
    "pruned": {"pruned_fraction": 0.3},
    "pruned-deprune": {"pruned_fraction": 0.3, "deprune_at_load": True},
    "dequantize-at-load": {"dequantize_at_load": True},
    "mmap": {"access_path": AccessPathKind.MMAP},
    "three-tier": {"tiers": "dram:2KiB,cxl:40KiB:64KiB,nand:1GiB"},
    "three-tier-promote-none": {
        "tiers": "dram:2KiB,cxl:40KiB:64KiB,nand:1GiB",
        "promotion": "none",
    },
    "three-tier-promote-top": {
        "tiers": "dram:2KiB,cxl:40KiB:64KiB,nand:1GiB",
        "promotion": "top",
    },
    "split-rows": {"split_rows": True, "tiers": "dram:2KiB,cxl:40KiB:64KiB,nand:1GiB"},
    "four-partitions": {"num_cache_partitions": 4},
    "tiny-cache": {"row_cache_capacity_bytes": 4 * 1024},
    "throttled-io": {
        "row_cache_capacity_bytes": 4 * 1024,
        "io": IOEngineConfig(max_outstanding_per_device=4, max_outstanding_per_table=2),
    },
    "full-block-io": {
        "row_cache_capacity_bytes": 4 * 1024,
        "io": IOEngineConfig(sub_block_reads=False),
    },
}


def _model(quant_bits: int = 8) -> DLRMModel:
    specs = [
        EmbeddingTableSpec(
            name="user_0",
            num_rows=256,
            dim=16,
            quant_bits=quant_bits,
            is_user=True,
            avg_pooling_factor=6.0,
            zipf_alpha=1.05,
        ),
        EmbeddingTableSpec(
            name="user_1",
            num_rows=256,
            dim=16,
            quant_bits=quant_bits,
            is_user=True,
            avg_pooling_factor=6.0,
            zipf_alpha=1.05,
        ),
        EmbeddingTableSpec(
            name="item_0",
            num_rows=256,
            dim=16,
            quant_bits=quant_bits,
            is_user=False,
            avg_pooling_factor=3.0,
            zipf_alpha=1.2,
        ),
    ]
    tables = {spec.name: EmbeddingTable.random(spec, seed=0) for spec in specs}
    total_dim = sum(spec.dim for spec in specs)
    return DLRMModel(
        name="parity-model",
        bottom_mlp=MLP([4, 16, 8], seed=0, name="parity/bottom"),
        top_mlp=MLP([8 + total_dim, 16, 1], seed=0, name="parity/top"),
        tables=tables,
        dense_dim=4,
        item_batch=1,
    )


def _build_sdm(variant: dict, serve_mode: str) -> SoftwareDefinedMemory:
    options = dict(variant)
    quant_bits = options.pop("quant_bits", 8)
    pruned_fraction = options.pop("pruned_fraction", 0.0)
    model = _model(quant_bits)
    pruned = None
    if pruned_fraction:
        pruned = {
            "user_0": prune_table(model.table("user_0"), pruned_fraction, seed=1)
        }
    config = SDMConfig(
        row_cache_capacity_bytes=options.pop("row_cache_capacity_bytes", 256 * 1024),
        pooled_cache_capacity_bytes=128 * 1024,
        num_devices=2,
        seed=0,
        serve_mode=serve_mode,
        **options,
    )
    return SoftwareDefinedMemory(model, config, pruned_tables=pruned)


def _serve(sdm: SoftwareDefinedMemory):
    generator = QueryGenerator(
        sdm.model, WorkloadConfig(item_batch=1, num_users=100), seed=3
    )
    trace = []
    cursor = 0.0
    for query in generator.generate(NUM_QUERIES):
        pooled, done = sdm.pooled_embeddings(query.user_indices, cursor)
        sdm.on_query_complete()
        trace.append(
            (
                {name: vec.tobytes() for name, vec in sorted(pooled.items())},
                done,
            )
        )
        cursor = done + 1e-4
    return trace


def _cache_snapshot(sdm: SoftwareDefinedMemory):
    snapshot = []
    for tier in sdm.tiers:
        if tier.cache is None:
            snapshot.append(None)
            continue
        orders = []
        for partition in list(tier.cache._memory_caches) + list(tier.cache._cpu_caches):
            orders.append(list(partition.keys()))
        snapshot.append(
            (
                tier.cache.stats,
                tier.cache.memory_optimized_stats,
                tier.cache.cpu_optimized_stats,
                orders,
            )
        )
    return snapshot


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_batched_serve_is_bit_identical_to_scalar(variant):
    scalar = _build_sdm(VARIANTS[variant], "scalar")
    batched = _build_sdm(VARIANTS[variant], "batched")
    scalar_trace = _serve(scalar)
    batched_trace = _serve(batched)
    for (rows_a, done_a), (rows_b, done_b) in zip(scalar_trace, batched_trace):
        assert rows_a == rows_b  # bitwise embedding equality
        assert done_a == done_b  # exact completion-time equality
    assert scalar.stats == batched.stats
    for tier_a, tier_b in zip(scalar.tiers, batched.tiers):
        assert tier_a.stats == tier_b.stats
    assert _cache_snapshot(scalar) == _cache_snapshot(batched)
    if scalar.pooled_cache is not None:
        assert batched.pooled_cache is not None
        assert scalar.pooled_cache.stats == batched.pooled_cache.stats


def test_batched_mode_actually_takes_the_batched_path():
    # Guard against the parity matrix passing vacuously because every
    # variant silently fell back to the scalar walk.
    sdm = _build_sdm({}, "batched")
    outcome = sdm.chain.fetch_batch(
        "user_0",
        np.arange(4, dtype=np.int64),
        np.array([1, 2, 3, 4], dtype=np.int64),
        0.0,
        cache_enabled=True,
        size_hint=sdm._sm_tables["user_0"].row_bytes,
    )
    assert outcome is not None
    assert outcome.rows.shape[0] == 4
