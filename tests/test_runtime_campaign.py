"""CampaignSpec expansion and the canonical spec hash the store relies on."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro import CampaignSpec, ScenarioSpec
from repro.api import BackendChoice, ModelChoice, ServingChoice, TrafficSpec, WorkloadChoice
from repro.runtime import CampaignAxis, point_name
from repro.runtime.campaign import REPLICATE_AXIS
from repro.sim.units import MIB

REPO_ROOT = Path(__file__).resolve().parent.parent


def small_base(**kwargs) -> ScenarioSpec:
    defaults = dict(
        name="camp",
        model=ModelChoice(max_tables_per_group=2, max_rows_per_table=256),
        workload=WorkloadChoice(num_queries=12, num_users=40),
        serving=ServingChoice(concurrency=1, warmup_queries=0),
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


class TestCampaignSpec:
    def test_expansion_order_and_shape(self):
        campaign = CampaignSpec.from_grid(
            small_base(),
            {"serving.concurrency": [1, 2], "workload.num_users": [40, 60, 80]},
        )
        assert campaign.shape == (2, 3)
        assert campaign.num_points() == 6
        points = campaign.points()
        assert [point.index for point in points] == list(range(6))
        # Last axis varies fastest.
        assert [dict(p.coords)["workload.num_users"] for p in points[:3]] == [40, 60, 80]
        assert all(dict(p.coords)["serving.concurrency"] == 1 for p in points[:3])
        assert all(dict(p.coords)["serving.concurrency"] == 2 for p in points[3:])

    def test_point_specs_carry_the_assignment(self):
        campaign = CampaignSpec.from_grid(small_base(), {"serving.concurrency": [1, 4]})
        specs = [point.spec for point in campaign.points()]
        assert [spec.serving.concurrency for spec in specs] == [1, 4]

    def test_point_names_encode_campaign_and_coords(self):
        campaign = CampaignSpec.from_grid(
            small_base(), {"backend.name": ["dram", "sdm"]}, name="grid"
        )
        names = [point.spec.name for point in campaign.points()]
        assert names == ["grid[backend.name=dram]", "grid[backend.name=sdm]"]
        assert point_name("grid", [("backend.name", "dram")]) == names[0]

    def test_section_valued_axis(self):
        backends = [
            BackendChoice(name="dram"),
            BackendChoice(name="sdm", options=dict(row_cache_capacity_bytes=1 * MIB)),
        ]
        campaign = CampaignSpec.from_grid(small_base(), {"backend": backends})
        specs = [point.spec for point in campaign.points()]
        assert [spec.backend.name for spec in specs] == ["dram", "sdm"]
        assert specs[1].backend.options["row_cache_capacity_bytes"] == 1 * MIB
        # Labels reduce section values to their name.
        assert campaign.points()[0].labels() == (("backend", "dram"),)

    def test_expansion_is_deterministic(self):
        campaign = CampaignSpec.from_grid(
            small_base(), {"serving.concurrency": [1, 2], "workload.num_users": [40, 60]}
        )
        first = [(p.spec.name, p.spec_hash()) for p in campaign.points()]
        second = [(p.spec.name, p.spec_hash()) for p in campaign.points()]
        assert first == second
        assert len({h for _, h in first}) == len(first)  # all points distinct

    def test_replicates_add_an_axis_with_derived_seeds(self):
        campaign = CampaignSpec.from_grid(
            small_base(), {"serving.concurrency": [1]}, replicates=3
        )
        assert campaign.shape == (1, 3)
        points = campaign.points()
        assert [dict(p.coords)[REPLICATE_AXIS] for p in points] == [0, 1, 2]
        seeds = [p.spec.workload.seed for p in points]
        assert len(set(seeds)) == 3  # each replicate individually seeded
        assert seeds[0] == small_base().workload.seed  # replicate 0 is the base
        assert len({p.spec_hash() for p in points}) == 3

    def test_duplicate_axis_labels_get_distinct_names(self):
        """Two values sharing a display label must not collapse to one point."""
        variants = [
            BackendChoice(name="sdm", options=dict(row_cache_capacity_bytes=1 * MIB)),
            BackendChoice(name="sdm", options=dict(row_cache_capacity_bytes=2 * MIB)),
        ]
        campaign = CampaignSpec.from_grid(small_base(), {"backend": variants}, name="ab")
        points = campaign.points()
        names = [point.spec.name for point in points]
        assert names == ["ab[backend=sdm#0]", "ab[backend=sdm#1]"]
        assert len({point.spec_hash() for point in points}) == 2
        assert [point.labels() for point in points] == [
            (("backend", "sdm#0"),), (("backend", "sdm#1"),)
        ]

    def test_open_loop_only_axis_on_closed_base_is_rejected(self):
        """Same guard as Session.sweep: a dead axis must not run silently."""
        for param, values in (
            ("traffic.queue_depth", [16, 256]),
            ("traffic.offered_qps", [100.0, 200.0]),
        ):
            with pytest.raises(ValueError, match="closed-loop"):
                CampaignSpec.from_grid(small_base(), {param: values})
        # Opening the loop through the grid itself is allowed.
        campaign = CampaignSpec.from_grid(
            small_base(
                traffic=TrafficSpec(mode="open", arrival="poisson", offered_qps=50.0)
            ),
            {"traffic.queue_depth": [16, 256]},
        )
        assert campaign.num_points() == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one value"):
            CampaignSpec(base=small_base(), axes=(("serving.concurrency", []),))
        with pytest.raises(ValueError, match="duplicate"):
            CampaignSpec(
                base=small_base(),
                axes=(("serving.concurrency", [1]), ("serving.concurrency", [2])),
            )
        with pytest.raises(ValueError, match="unknown spec path"):
            CampaignSpec(base=small_base(), axes=(("nope.field", [1]),))
        with pytest.raises(ValueError, match="replicates"):
            CampaignSpec(base=small_base(), replicates=0)
        with pytest.raises(ValueError, match="implicit replicate axis"):
            CampaignAxis(REPLICATE_AXIS, (1, 2))
        # Bad axis *values* fail at construction, not mid-campaign.
        with pytest.raises(ValueError, match="concurrency must be positive"):
            CampaignSpec(base=small_base(), axes=(("serving.concurrency", [1, 0]),))

    def test_to_dict_round_trip(self):
        campaign = CampaignSpec.from_grid(
            small_base(),
            {
                "backend": [BackendChoice(name="dram"), BackendChoice(name="sdm")],
                "serving.concurrency": [1, 2],
            },
            name="round-trip",
            replicates=2,
        )
        data = json.loads(json.dumps(campaign.to_dict()))  # must be JSON-able
        rebuilt = CampaignSpec.from_dict(data)
        assert rebuilt.name == campaign.name
        assert rebuilt.base == campaign.base
        assert rebuilt.replicates == 2
        assert [p.spec_hash() for p in rebuilt.points()] == [
            p.spec_hash() for p in campaign.points()
        ]

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown CampaignSpec keys"):
            CampaignSpec.from_dict({"axis": []})


def _spec_matrix():
    """One spec per built-in backend x traffic mode (satellite: store foundation)."""
    backends = {
        "dram": {},
        "sdm": dict(row_cache_capacity_bytes=1 * MIB, num_devices=2),
        "pooled": dict(pooled_cache_capacity_bytes=1 * MIB),
    }
    traffics = {
        "closed": TrafficSpec(mode="closed"),
        "open": TrafficSpec(mode="open", arrival="poisson", offered_qps=200.0, seed=7),
    }
    for backend_name, options in backends.items():
        for mode, traffic in traffics.items():
            yield ScenarioSpec(
                name=f"hash-{backend_name}-{mode}",
                backend=BackendChoice(name=backend_name, options=options),
                traffic=traffic,
            )


class TestSpecHashStability:
    @pytest.mark.parametrize("spec", _spec_matrix(), ids=lambda spec: spec.name)
    def test_hash_survives_round_trip(self, spec):
        rebuilt = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt.canonical_json() == spec.canonical_json()
        assert rebuilt.spec_hash() == spec.spec_hash()

    def test_hash_is_order_insensitive(self):
        spec = ScenarioSpec(
            backend=BackendChoice(name="sdm", options=dict(num_devices=2, queue_depth=4))
        )
        reordered = ScenarioSpec(
            backend=BackendChoice(name="sdm", options=dict(queue_depth=4, num_devices=2))
        )
        assert spec.spec_hash() == reordered.spec_hash()

    def test_hash_distinguishes_specs(self):
        assert (
            ScenarioSpec().spec_hash()
            != ScenarioSpec().replace("serving.concurrency", 4).spec_hash()
        )

    def test_hash_is_stable_across_processes(self):
        """The store's key must not depend on interpreter state (PYTHONHASHSEED)."""
        specs = list(_spec_matrix())
        payload = json.dumps([spec.to_dict() for spec in specs])
        script = (
            "import json, sys\n"
            "from repro import ScenarioSpec\n"
            "specs = [ScenarioSpec.from_dict(d) for d in json.load(sys.stdin)]\n"
            "print(json.dumps([s.spec_hash() for s in specs]))\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            input=payload,
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={
                "PYTHONPATH": str(REPO_ROOT / "src"),
                "PATH": "/usr/bin:/bin:/usr/local/bin",
                "PYTHONHASHSEED": "12345",  # a hash seed the parent doesn't use
            },
        )
        assert completed.returncode == 0, completed.stderr
        assert json.loads(completed.stdout) == [spec.spec_hash() for spec in specs]
