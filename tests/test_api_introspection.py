"""Schema introspection: the bridge between the lint rules and the live
ScenarioSpec/ScenarioResult dataclasses."""

import dataclasses

import pytest

from repro.api.results import (
    PERCENTILE_KEYS,
    PowerSummary,
    ScenarioResult,
    metric_path_error,
    result_dict_keys,
    scenario_metric_error,
    scenario_metrics,
)
from repro.api.spec import (
    ScenarioSpec,
    iter_spec_paths,
    section_fields,
    spec_path_error,
)


class TestSpecPathError:
    @pytest.mark.parametrize(
        "path",
        [
            "name",
            "model.spec",
            "backend.name",
            "backend.options.num_devices",
            "backend.options.tiers.1.capacity",
            "tiers.1.capacity",  # the documented shorthand
            "tiers.0.cache_bytes",
            "workload.num_queries",
            "traffic.offered_qps",
            "serving.concurrency",
            "serving",  # a whole section is addressable
        ],
    )
    def test_valid_paths_pass(self, path):
        assert spec_path_error(path) is None

    @pytest.mark.parametrize(
        "path, fragment",
        [
            ("tiers.1.capactiy", "capactiy"),
            ("serving.concurency", "concurency"),
            ("warkload.num_queries", "warkload"),
            ("tiers.first.capacity", "tier index"),
            ("backend.name.extra", "backend.name"),
            ("serving..concurrency", "empty"),
            ("", "empty"),
        ],
    )
    def test_invalid_paths_name_the_problem(self, path, fragment):
        error = spec_path_error(path)
        assert error is not None
        assert fragment in error

    def test_every_replace_accepted_path_passes(self):
        # Contract: what spec_path_error blesses, ScenarioSpec.replace accepts.
        spec = ScenarioSpec()
        for path, value in [
            ("workload.num_queries", 5),
            ("serving.concurrency", 2),
            ("backend.name", "dram"),
        ]:
            assert spec_path_error(path) is None
            spec = spec.replace(path, value)
        assert spec.workload.num_queries == 5

    def test_replace_rejects_what_the_checker_rejects(self):
        with pytest.raises((ValueError, TypeError)):
            ScenarioSpec().replace("serving.concurency", 2)
        assert spec_path_error("serving.concurency") is not None


class TestIterSpecPaths:
    def test_yields_sections_and_fields(self):
        paths = set(iter_spec_paths())
        assert "name" in paths
        assert "serving" in paths
        assert "serving.concurrency" in paths
        assert "workload.num_queries" in paths
        assert "traffic.offered_qps" in paths

    def test_every_emitted_path_validates(self):
        for path in iter_spec_paths():
            assert spec_path_error(path) is None, path

    def test_section_fields_match_dataclasses(self):
        assert "concurrency" in section_fields("serving")
        assert "num_queries" in section_fields("workload")
        with pytest.raises(ValueError):
            section_fields("nope")


class TestScenarioMetricError:
    def test_accepts_every_dataclass_field(self):
        for name in scenario_metrics():
            assert scenario_metric_error(name) is None

    def test_rejects_unknowns_listing_choices(self):
        error = scenario_metric_error("achieved_qpz")
        assert error is not None
        assert "achieved_qpz" in error
        assert "achieved_qps" in error


class TestMetricPathError:
    @pytest.mark.parametrize(
        "path",
        [
            "achieved_qps",
            "makespan_seconds",
            "latency_seconds.p99",
            "latency_seconds.mean",
            "queueing_seconds.p95",
            "power.fleet_power",
            "backend_stats.row cache hit rate",
        ],
    )
    def test_addressable_paths_pass(self, path):
        assert metric_path_error(path) is None

    @pytest.mark.parametrize(
        "path, fragment",
        [
            ("latency_seconds.p98", "p98"),
            ("latency_seconds", "percentile"),
            ("power.host_watts", "host_watts"),
            ("achieved_qps.p99", "achieved_qps"),
            ("no_such_metric", "no_such_metric"),
            ("tiers.0", "tiers"),
        ],
    )
    def test_unaddressable_paths_name_the_problem(self, path, fragment):
        error = metric_path_error(path)
        assert error is not None
        assert fragment in error

    def test_percentile_keys_match_summary_shape(self):
        result = ScenarioResult(
            scenario="s", backend_name="dram", num_queries=4, concurrency=1,
            makespan_seconds=0.1, achieved_qps=40.0,
            latency={"mean": 0.01, "p50": 0.01, "p95": 0.02, "p99": 0.03},
            meets_slo=True, slo_headroom=0.5,
        )
        assert set(PERCENTILE_KEYS) == set(result.to_dict()["latency_seconds"])


class TestResultDictKeys:
    def test_pinned_against_a_real_to_dict(self):
        result = ScenarioResult(
            scenario="s", backend_name="dram", num_queries=4, concurrency=1,
            makespan_seconds=0.1, achieved_qps=40.0,
            latency={"mean": 0.01, "p50": 0.01, "p95": 0.02, "p99": 0.03},
            meets_slo=True, slo_headroom=0.5,
            power=PowerSummary(platform="p", host_power=1.0, num_hosts=1, fleet_power=1.0),
            traffic_mode="open", offered_qps=50.0, dropped_queries=0,
            queueing={"mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0},
            backend_stats={"hit rate": 0.9},
            tiers=[{"name": "dram"}],
        )
        assert set(result.to_dict()) <= set(result_dict_keys())

    def test_power_paths_track_the_dataclass(self):
        for field in dataclasses.fields(PowerSummary):
            assert metric_path_error(f"power.{field.name}") is None
