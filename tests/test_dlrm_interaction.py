"""Tests for feature interaction."""

import numpy as np
import pytest

from repro.dlrm import concat_interaction, dot_interaction


class TestConcatInteraction:
    def test_concatenates_in_order(self):
        dense = np.array([1.0, 2.0], dtype=np.float32)
        pooled = [np.array([3.0], dtype=np.float32), np.array([4.0, 5.0], dtype=np.float32)]
        np.testing.assert_array_equal(
            concat_interaction(dense, pooled), np.array([1, 2, 3, 4, 5], dtype=np.float32)
        )

    def test_handles_no_embeddings(self):
        dense = np.array([1.0, 2.0], dtype=np.float32)
        np.testing.assert_array_equal(concat_interaction(dense, []), dense)

    def test_rejects_matrix_dense(self):
        with pytest.raises(ValueError):
            concat_interaction(np.zeros((2, 2)), [])


class TestDotInteraction:
    def test_output_length(self):
        dense = np.ones(4, dtype=np.float32)
        pooled = [np.ones(4), np.ones(4)]
        out = dot_interaction(dense, pooled)
        # dense (4) + upper triangle of 3x3 interaction matrix (3 pairs)
        assert out.shape == (4 + 3,)

    def test_pairwise_dot_values(self):
        dense = np.array([1.0, 0.0], dtype=np.float32)
        a = np.array([0.0, 1.0], dtype=np.float32)
        out = dot_interaction(dense, [a])
        assert out[-1] == pytest.approx(0.0)  # dense . a

    def test_mismatched_dims_rejected(self):
        with pytest.raises(ValueError):
            dot_interaction(np.ones(4), [np.ones(3)])

    def test_rejects_matrix_dense(self):
        with pytest.raises(ValueError):
            dot_interaction(np.zeros((2, 2)), [np.zeros(2)])
