"""Tests for the auto-tuning tool."""

import pytest

from repro.core import AutoTuner, SDMConfig
from repro.sim.units import MIB


class TestAutoTuner:
    def test_evaluates_all_combinations(self):
        evaluated = []

        def evaluate(config):
            evaluated.append(config)
            return float(config.row_cache_capacity_bytes)

        tuner = AutoTuner(
            base_config=SDMConfig(),
            search_space={
                "row_cache_capacity_bytes": [1 * MIB, 2 * MIB],
                "pooled_len_threshold": [1, 4, 8],
            },
            evaluate=evaluate,
        )
        results = tuner.run()
        assert len(results) == 6
        assert len(evaluated) == 6

    def test_results_sorted_best_first(self):
        tuner = AutoTuner(
            base_config=SDMConfig(),
            search_space={"row_cache_capacity_bytes": [1 * MIB, 4 * MIB, 2 * MIB]},
            evaluate=lambda config: float(config.row_cache_capacity_bytes),
        )
        results = tuner.run()
        scores = [result.score for result in results]
        assert scores == sorted(scores, reverse=True)
        assert tuner.best().overrides["row_cache_capacity_bytes"] == 4 * MIB

    def test_candidates_deterministic_order(self):
        tuner = AutoTuner(
            base_config=SDMConfig(),
            search_space={"pooled_len_threshold": [1, 2], "num_devices": [1, 2]},
            evaluate=lambda config: 0.0,
        )
        assert tuner.candidates() == tuner.candidates()

    def test_best_config_is_applied_copy(self):
        tuner = AutoTuner(
            base_config=SDMConfig(),
            search_space={"pooled_len_threshold": [7]},
            evaluate=lambda config: 1.0,
        )
        assert tuner.best().config.pooled_len_threshold == 7

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            AutoTuner(SDMConfig(), {"nonexistent_field": [1]}, lambda c: 0.0)

    def test_empty_search_space_rejected(self):
        with pytest.raises(ValueError):
            AutoTuner(SDMConfig(), {}, lambda c: 0.0)
        with pytest.raises(ValueError):
            AutoTuner(SDMConfig(), {"num_devices": []}, lambda c: 0.0)
