"""Tests for the table-to-block layout."""

import pytest

from repro.sim.units import BLOCK_SIZE, MIB
from repro.storage import BlockLayout


class TestBlockLayoutAllocation:
    def test_rows_pack_into_blocks(self):
        layout = BlockLayout([1 * MIB])
        extent = layout.add_table("t", num_rows=100, row_bytes=128)
        assert extent.rows_per_block == BLOCK_SIZE // 128
        assert extent.num_blocks == -(-100 // extent.rows_per_block)

    def test_allocated_bytes_tracks_blocks(self):
        layout = BlockLayout([1 * MIB])
        extent = layout.add_table("t", num_rows=64, row_bytes=128)
        assert layout.allocated_bytes(0) == extent.num_blocks * BLOCK_SIZE

    def test_tables_spread_to_emptier_device(self):
        layout = BlockLayout([1 * MIB, 1 * MIB])
        first = layout.add_table("a", num_rows=32, row_bytes=128)
        second = layout.add_table("b", num_rows=32, row_bytes=128)
        assert first.device_index != second.device_index

    def test_duplicate_table_rejected(self):
        layout = BlockLayout([1 * MIB])
        layout.add_table("t", 10, 64)
        with pytest.raises(ValueError):
            layout.add_table("t", 10, 64)

    def test_row_larger_than_block_rejected(self):
        layout = BlockLayout([1 * MIB])
        with pytest.raises(ValueError):
            layout.add_table("t", 10, BLOCK_SIZE + 1)

    def test_out_of_capacity_rejected(self):
        layout = BlockLayout([8 * BLOCK_SIZE])
        with pytest.raises(ValueError):
            layout.add_table("t", num_rows=9 * 32, row_bytes=128)

    def test_no_devices_rejected(self):
        with pytest.raises(ValueError):
            BlockLayout([])

    def test_invalid_rows_rejected(self):
        layout = BlockLayout([1 * MIB])
        with pytest.raises(ValueError):
            layout.add_table("t", 0, 64)
        with pytest.raises(ValueError):
            layout.add_table("t", 10, 0)


class TestRowLocation:
    def test_locate_first_row(self):
        layout = BlockLayout([1 * MIB])
        layout.add_table("t", num_rows=100, row_bytes=100)
        location = layout.locate("t", 0)
        assert location.offset == 0
        assert location.length == 100

    def test_locate_row_within_block(self):
        layout = BlockLayout([1 * MIB])
        layout.add_table("t", num_rows=100, row_bytes=100)
        location = layout.locate("t", 3)
        assert location.lba == layout.extent("t").first_lba
        assert location.offset == 300

    def test_locate_row_in_second_block(self):
        layout = BlockLayout([1 * MIB])
        extent = layout.add_table("t", num_rows=100, row_bytes=100)
        location = layout.locate("t", extent.rows_per_block)
        assert location.lba == extent.first_lba + 1
        assert location.offset == 0

    def test_rows_never_straddle_blocks(self):
        layout = BlockLayout([1 * MIB])
        layout.add_table("t", num_rows=500, row_bytes=96)
        for row in range(500):
            location = layout.locate("t", row)
            assert location.offset + location.length <= BLOCK_SIZE

    def test_out_of_range_row_rejected(self):
        layout = BlockLayout([1 * MIB])
        layout.add_table("t", num_rows=10, row_bytes=100)
        with pytest.raises(IndexError):
            layout.locate("t", 10)

    def test_unknown_table_rejected(self):
        layout = BlockLayout([1 * MIB])
        with pytest.raises(KeyError):
            layout.locate("missing", 0)

    def test_block_aligned_range(self):
        layout = BlockLayout([1 * MIB])
        layout.add_table("t", num_rows=10, row_bytes=100)
        location = layout.locate("t", 1)
        start, end = location.block_aligned_range
        assert end - start == BLOCK_SIZE
        assert start == location.lba * BLOCK_SIZE

    def test_total_allocated_bytes_sums_devices(self):
        layout = BlockLayout([1 * MIB, 1 * MIB])
        layout.add_table("a", 32, 128)
        layout.add_table("b", 32, 128)
        assert layout.total_allocated_bytes() == (
            layout.allocated_bytes(0) + layout.allocated_bytes(1)
        )

    def test_has_table_and_tables_listing(self):
        layout = BlockLayout([1 * MIB])
        layout.add_table("a", 8, 64)
        assert layout.has_table("a")
        assert not layout.has_table("b")
        assert layout.tables() == ["a"]
