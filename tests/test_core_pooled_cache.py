"""Tests for the pooled embedding cache (Algorithm 1) and Table 3 profiling."""

import numpy as np
import pytest

from repro.core import (
    PooledEmbeddingCache,
    order_invariant_hash,
    order_invariant_hash_batch,
    profile_subsequence_schemes,
)


class TestOrderInvariantHash:
    def test_order_invariance(self):
        assert order_invariant_hash([1, 2, 3]) == order_invariant_hash([3, 1, 2])

    def test_different_sets_differ(self):
        assert order_invariant_hash([1, 2, 3]) != order_invariant_hash([1, 2, 4])

    def test_multiset_sensitivity(self):
        assert order_invariant_hash([1]) != order_invariant_hash([1, 1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            order_invariant_hash([])

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            order_invariant_hash([-1])

    def test_stable_across_calls(self):
        assert order_invariant_hash([5, 9, 11]) == order_invariant_hash([5, 9, 11])


class TestOrderInvariantHashBatch:
    """The vectorised hash must equal the scalar hash value for value."""

    @pytest.mark.parametrize(
        "indices",
        [
            [0],
            [1, 2, 3],
            [3, 1, 2],
            [1, 1, 7],
            list(range(100)),
            [2**62, 2**63 - 1, 0, 5],  # uint64 wrap-around territory
        ],
    )
    def test_matches_scalar_hash(self, indices):
        array = np.asarray(indices, dtype=np.int64)
        assert order_invariant_hash_batch(array) == order_invariant_hash(indices)

    def test_order_invariance(self):
        forward = np.arange(50, dtype=np.int64)
        rng = np.random.default_rng(0)
        shuffled = rng.permutation(forward)
        assert order_invariant_hash_batch(forward) == order_invariant_hash_batch(shuffled)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            order_invariant_hash_batch(np.array([], dtype=np.int64))

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            order_invariant_hash_batch(np.array([3, -1], dtype=np.int64))


class TestPooledCacheBatchProbes:
    """probe_batch/put_batch: scalar get/put with a vectorised key hash."""

    def test_batch_and_scalar_entries_interoperate(self):
        cache = PooledEmbeddingCache(capacity_bytes=64 * 1024)
        pooled = np.ones(8, dtype=np.float32)
        indices = [4, 2, 9]
        cache.put("t", indices, pooled)
        via_batch = cache.probe_batch("t", np.asarray(indices, dtype=np.int64))
        assert via_batch is not None
        np.testing.assert_array_equal(via_batch, pooled)
        cache.put_batch("u", np.asarray(indices, dtype=np.int64), pooled)
        via_scalar = cache.get("u", indices)
        assert via_scalar is not None
        np.testing.assert_array_equal(via_scalar, pooled)

    def test_stats_match_scalar_probes(self):
        scalar = PooledEmbeddingCache(capacity_bytes=64 * 1024, len_threshold=2)
        batched = PooledEmbeddingCache(capacity_bytes=64 * 1024, len_threshold=2)
        pooled = np.zeros(4, dtype=np.float32)
        workload = [[1, 2, 3], [9], [1, 2, 3], [5, 6, 7, 8], [3, 2, 1]]
        for indices in workload:
            if scalar.get("t", indices) is None:
                scalar.put("t", indices, pooled)
            array = np.asarray(indices, dtype=np.int64)
            if batched.probe_batch("t", array) is None:
                batched.put_batch("t", array, pooled)
        assert scalar.stats == batched.stats
        assert scalar.item_count == batched.item_count
    def test_miss_then_hit(self):
        cache = PooledEmbeddingCache(64 * 1024, len_threshold=1)
        vector = np.arange(8, dtype=np.float32)
        assert cache.get("t", [1, 2, 3]) is None
        cache.put("t", [1, 2, 3], vector)
        np.testing.assert_array_equal(cache.get("t", [1, 2, 3]), vector)

    def test_hit_is_order_invariant(self):
        cache = PooledEmbeddingCache(64 * 1024)
        vector = np.ones(4, dtype=np.float32)
        cache.put("t", [4, 5, 6], vector)
        assert cache.get("t", [6, 4, 5]) is not None

    def test_len_threshold_skips_short_requests(self):
        cache = PooledEmbeddingCache(64 * 1024, len_threshold=4)
        vector = np.ones(4, dtype=np.float32)
        assert not cache.put("t", [1, 2], vector)
        assert cache.get("t", [1, 2]) is None
        assert cache.stats.lookups == 0
        assert cache.stats.skipped_short > 0

    def test_eligibility_matches_algorithm1_predicate(self):
        cache = PooledEmbeddingCache(1024, len_threshold=3)
        assert not cache.eligible([1, 2, 3])
        assert cache.eligible([1, 2, 3, 4])

    def test_different_tables_do_not_collide(self):
        cache = PooledEmbeddingCache(64 * 1024)
        cache.put("a", [1, 2], np.zeros(2, dtype=np.float32))
        assert cache.get("b", [1, 2]) is None

    def test_stats_hit_rate_and_avg_length(self):
        cache = PooledEmbeddingCache(64 * 1024)
        cache.put("t", [1, 2, 3, 4], np.zeros(2, dtype=np.float32))
        cache.get("t", [1, 2, 3, 4])
        cache.get("t", [9, 9, 9])
        assert cache.stats.hit_rate == pytest.approx(0.5)
        assert cache.stats.average_hit_length == pytest.approx(4.0)

    def test_capacity_eviction(self):
        cache = PooledEmbeddingCache(1024)
        vector = np.zeros(64, dtype=np.float32)  # 256B each + overhead
        for sequence_id in range(20):
            cache.put("t", [sequence_id, sequence_id + 1], vector)
        assert cache.used_bytes <= cache.capacity_bytes

    def test_returned_vector_is_a_copy(self):
        cache = PooledEmbeddingCache(64 * 1024)
        cache.put("t", [1, 2], np.zeros(4, dtype=np.float32))
        out = cache.get("t", [1, 2])
        out[0] = 99.0
        np.testing.assert_array_equal(cache.get("t", [1, 2]), np.zeros(4, dtype=np.float32))

    def test_clear_and_reset(self):
        cache = PooledEmbeddingCache(64 * 1024)
        cache.put("t", [1, 2], np.zeros(4, dtype=np.float32))
        cache.clear()
        assert cache.get("t", [1, 2]) is None
        cache.reset_stats()
        assert cache.stats.lookups == 0

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            PooledEmbeddingCache(1024, len_threshold=-1)


class TestSubsequenceProfiling:
    def _sequences(self):
        rng = np.random.default_rng(0)
        base = [list(rng.choice(500, size=15, replace=False)) for _ in range(30)]
        sequences = []
        for query_id in range(300):
            if query_id % 10 == 0 and sequences:
                sequences.append(list(base[query_id % len(base)]))
            else:
                sequences.append(list(rng.choice(500, size=15, replace=False)))
        return sequences

    def test_returns_three_schemes(self):
        profiles = profile_subsequence_schemes(self._sequences(), subsequence_length=10)
        assert [p.scheme for p in profiles] == ["c=10", "c=10, top indices", "c=P"]

    def test_general_scheme_hit_rate_at_least_full_sequence(self):
        profiles = profile_subsequence_schemes(self._sequences(), subsequence_length=10)
        by_scheme = {p.scheme: p for p in profiles}
        assert by_scheme["c=10"].hit_rate >= by_scheme["c=P"].hit_rate

    def test_generated_sequences_ordering_matches_table3(self):
        """c=10 generates combinatorially many candidate subsequences, the
        top-indices variant O(top), and c=P exactly one."""
        profiles = profile_subsequence_schemes(self._sequences(), subsequence_length=10)
        by_scheme = {p.scheme: p for p in profiles}
        assert by_scheme["c=P"].generated_sequences_per_query == 1.0
        assert (
            by_scheme["c=10"].generated_sequences_per_query
            > by_scheme["c=10, top indices"].generated_sequences_per_query
            > by_scheme["c=P"].generated_sequences_per_query
        )

    def test_full_sequence_hits_counted(self):
        sequences = [[1, 2, 3], [4, 5, 6], [3, 2, 1], [1, 2, 3]]
        profiles = profile_subsequence_schemes(sequences, subsequence_length=3)
        full = [p for p in profiles if p.scheme == "c=P"][0]
        assert full.hit_rate == pytest.approx(0.5)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            profile_subsequence_schemes([])

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            profile_subsequence_schemes([[1, 2]], subsequence_length=0)
