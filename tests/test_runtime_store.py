"""ExperimentStore: durable JSONL records keyed by canonical spec hash."""

import json

from repro import ExperimentStore, ScenarioSpec


def result_dict(**overrides):
    base = {
        "scenario": "s",
        "backend": "dram",
        "num_queries": 10,
        "concurrency": 1,
        "makespan_seconds": 0.5,
        "achieved_qps": 20.0,
        "latency_seconds": {"mean": 0.01, "p50": 0.01, "p95": 0.02, "p99": 0.03},
        "meets_slo": True,
        "slo_headroom": 0.5,
        "backend_stats": {},
        "power": None,
        "traffic_mode": "closed",
        "offered_qps": None,
        "dropped_queries": 0,
        "queueing_seconds": None,
    }
    base.update(overrides)
    return base


class TestExperimentStore:
    def test_put_then_get_round_trips(self, tmp_path):
        store = ExperimentStore(tmp_path / "run")
        spec = ScenarioSpec(name="point-a")
        record = store.put(spec, result_dict(), index=3, coords=[("p", 1)])
        assert store.get(spec.spec_hash()) == record
        assert store.get_spec(spec) == record
        assert record["index"] == 3
        assert record["coords"] == [["p", 1]]
        assert spec.spec_hash() in store
        assert len(store) == 1

    def test_records_survive_a_fresh_handle(self, tmp_path):
        store = ExperimentStore(tmp_path / "run")
        spec = ScenarioSpec(name="durable")
        store.put(spec, result_dict())
        reopened = ExperimentStore(tmp_path / "run")
        assert reopened.get(spec.spec_hash())["result"]["achieved_qps"] == 20.0

    def test_last_record_wins_for_duplicate_hashes(self, tmp_path):
        store = ExperimentStore(tmp_path / "run")
        spec = ScenarioSpec(name="dup")
        store.put(spec, result_dict(achieved_qps=1.0))
        store.put(spec, result_dict(achieved_qps=2.0))
        reopened = ExperimentStore(tmp_path / "run")
        assert reopened.get(spec.spec_hash())["result"]["achieved_qps"] == 2.0
        assert len(reopened) == 1

    def test_truncated_trailing_line_is_skipped(self, tmp_path):
        """A crash mid-append must not poison the completed records."""
        store = ExperimentStore(tmp_path / "run")
        good = ScenarioSpec(name="good")
        store.put(good, result_dict())
        with open(store.results_path, "a", encoding="utf-8") as handle:
            handle.write('{"spec_hash": "deadbeef", "result": {"achie')  # no newline
        reopened = ExperimentStore(tmp_path / "run")
        assert len(reopened) == 1
        assert reopened.get(good.spec_hash()) is not None
        assert reopened.get("deadbeef") is None

    def test_blank_lines_and_missing_hash_tolerated(self, tmp_path):
        store = ExperimentStore(tmp_path / "run")
        spec = ScenarioSpec(name="ok")
        store.put(spec, result_dict())
        with open(store.results_path, "a", encoding="utf-8") as handle:
            handle.write("\n")
            handle.write(json.dumps({"no_hash": True}) + "\n")
        assert len(ExperimentStore(tmp_path / "run")) == 1

    def test_missing_directory_reads_as_empty(self, tmp_path):
        store = ExperimentStore(tmp_path / "nowhere")
        assert not store.exists()
        assert len(store) == 0
        assert store.get("anything") is None

    def test_campaign_metadata_round_trip(self, tmp_path):
        store = ExperimentStore(tmp_path / "run")
        assert store.read_campaign() is None
        meta = {"name": "c", "axes": [{"param": "x", "values": [1, 2]}]}
        store.write_campaign(meta)
        assert store.read_campaign() == meta


class TestShardedStore:
    def test_put_with_shard_writes_that_shard_only(self, tmp_path):
        store = ExperimentStore(tmp_path / "run")
        spec = ScenarioSpec(name="sharded")
        store.put(spec, result_dict(), shard="w7")
        assert not store.results_path.exists()
        assert store.shard_path("w7").exists()
        assert [p.name for p in store.shard_paths()] == ["results-w7.jsonl"]
        assert store.exists()

    def test_shards_merge_with_the_main_file_on_read(self, tmp_path):
        store = ExperimentStore(tmp_path / "run")
        main_spec = ScenarioSpec(name="from-main")
        shard_a = ScenarioSpec(name="from-a")
        shard_b = ScenarioSpec(name="from-b")
        store.put(main_spec, result_dict(achieved_qps=1.0))
        store.put(shard_a, result_dict(achieved_qps=2.0), shard="w1")
        store.put(shard_b, result_dict(achieved_qps=3.0), shard="w2")
        reopened = ExperimentStore(tmp_path / "run")
        assert len(reopened) == 3
        assert reopened.get_spec(main_spec)["result"]["achieved_qps"] == 1.0
        assert reopened.get_spec(shard_a)["result"]["achieved_qps"] == 2.0
        assert reopened.get_spec(shard_b)["result"]["achieved_qps"] == 3.0

    def test_merge_order_is_deterministic_main_then_sorted_shards(self, tmp_path):
        store = ExperimentStore(tmp_path / "run")
        spec = ScenarioSpec(name="dup")
        # Same spec hash in the main file and two shards: shards merge after
        # the main file in name-sorted order, so the lexically-last shard wins.
        store.put(spec, result_dict(achieved_qps=1.0))
        store.put(spec, result_dict(achieved_qps=3.0), shard="w2")
        store.put(spec, result_dict(achieved_qps=2.0), shard="w1")
        reopened = ExperimentStore(tmp_path / "run")
        assert len(reopened) == 1
        assert reopened.get_spec(spec)["result"]["achieved_qps"] == 3.0
        assert [p.name for p in reopened.result_paths()] == [
            "results.jsonl",
            "results-w1.jsonl",
            "results-w2.jsonl",
        ]

    def test_legacy_single_file_store_reads_unchanged(self, tmp_path):
        """A store written before sharding existed is just a main file."""
        store = ExperimentStore(tmp_path / "run")
        spec = ScenarioSpec(name="legacy")
        store.put(spec, result_dict())
        reopened = ExperimentStore(tmp_path / "run")
        assert reopened.shard_paths() == []
        assert len(reopened) == 1
        assert reopened.get_spec(spec) is not None

    def test_truncated_shard_line_is_skipped(self, tmp_path):
        store = ExperimentStore(tmp_path / "run")
        good = ScenarioSpec(name="good")
        store.put(good, result_dict(), shard="w1")
        with open(store.shard_path("w1"), "a", encoding="utf-8") as handle:
            handle.write('{"spec_hash": "deadbeef", "result": {"achie')
        reopened = ExperimentStore(tmp_path / "run")
        assert len(reopened) == 1
        assert reopened.get("deadbeef") is None

    def test_register_updates_memory_without_touching_disk(self, tmp_path):
        store = ExperimentStore(tmp_path / "run")
        spec = ScenarioSpec(name="registered")
        record = store.register(spec, result_dict(), index=1, coords=[("p", 2)])
        assert store.get_spec(spec) == record
        assert record["coords"] == [["p", 2]]
        assert not store.result_paths()
        assert len(ExperimentStore(tmp_path / "run")) == 0

    def test_invalid_shard_names_are_rejected(self, tmp_path):
        store = ExperimentStore(tmp_path / "run")
        for bad in ("", "a/b", "../escape"):
            try:
                store.shard_path(bad)
            except ValueError:
                continue
            raise AssertionError(f"shard name {bad!r} was accepted")
