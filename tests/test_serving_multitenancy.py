"""Tests for the multi-tenancy model (section 5.3, Table 11)."""

import pytest

from repro.serving import HW_FA, HW_FAO, MultiTenancyScenario, evaluate_multi_tenancy
from repro.serving.multitenancy import compare_multi_tenancy
from repro.sim.units import GB


def _scenarios(compute_fraction=0.225, model_capacity=160 * GB, cache_bytes=20 * GB):
    baseline = MultiTenancyScenario(
        platform=HW_FA,
        model_dram_bytes=model_capacity,
        model_sm_bytes=0.0,
        model_compute_fraction=compute_fraction,
        use_sdm=False,
    )
    with_sdm = MultiTenancyScenario(
        platform=HW_FAO,
        model_dram_bytes=cache_bytes,
        model_sm_bytes=model_capacity - cache_bytes,
        model_compute_fraction=compute_fraction,
        use_sdm=True,
    )
    return baseline, with_sdm


class TestMultiTenancy:
    def test_baseline_is_memory_bound(self):
        baseline, _ = _scenarios()
        result = evaluate_multi_tenancy(baseline)
        assert result.models_by_memory < result.models_by_compute
        assert result.utilisation < 0.75

    def test_sdm_is_compute_bound(self):
        _, with_sdm = _scenarios()
        result = evaluate_multi_tenancy(with_sdm)
        assert result.models_by_memory > result.models_by_compute
        assert result.utilisation > 0.85

    def test_sdm_reduces_fleet_power_per_work(self):
        baseline, with_sdm = _scenarios()
        base_result, sdm_result = compare_multi_tenancy(baseline, with_sdm)
        saving = 1.0 - sdm_result.fleet_power_per_work / base_result.fleet_power_per_work
        assert saving > 0.2  # the paper reports up to 29%

    def test_utilisation_capped_at_one(self):
        scenario = MultiTenancyScenario(
            platform=HW_FAO,
            model_dram_bytes=1 * GB,
            model_sm_bytes=1 * GB,
            model_compute_fraction=0.9,
            use_sdm=True,
        )
        assert evaluate_multi_tenancy(scenario).utilisation <= 1.0

    def test_sm_capacity_can_bound_colocation(self):
        scenario = MultiTenancyScenario(
            platform=HW_FAO,
            model_dram_bytes=1 * GB,
            model_sm_bytes=1000 * GB,
            model_compute_fraction=0.01,
            use_sdm=True,
        )
        result = evaluate_multi_tenancy(scenario)
        assert result.models_by_memory == pytest.approx(
            HW_FAO.total_sm_capacity_bytes / (1000 * GB)
        )
        assert result.models_per_host == result.models_by_memory

    def test_zero_utilisation_rejected(self):
        scenario = MultiTenancyScenario(
            platform=HW_FA,
            model_dram_bytes=1e15,
            model_sm_bytes=0.0,
            model_compute_fraction=0.5,
        )
        with pytest.raises(ValueError):
            evaluate_multi_tenancy(scenario)

    def test_scenario_validation(self):
        with pytest.raises(ValueError):
            MultiTenancyScenario(HW_FA, -1, 0, 0.5)
        with pytest.raises(ValueError):
            MultiTenancyScenario(HW_FA, 1, 0, 0.0)
        with pytest.raises(ValueError):
            MultiTenancyScenario(HW_FA, 1, 0, 0.5, dram_reserved_bytes=-1)
