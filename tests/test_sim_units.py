"""Tests for unit constants and formatting helpers."""

import pytest

from repro.sim.units import (
    BLOCK_SIZE,
    GB,
    GIB,
    KB,
    KIB,
    MB,
    MIB,
    MICROSECOND,
    MILLISECOND,
    SECOND,
    TB,
    TIB,
    format_bytes,
    format_time,
)


class TestConstants:
    def test_decimal_units_scale_by_1000(self):
        assert MB == 1000 * KB
        assert GB == 1000 * MB
        assert TB == 1000 * GB

    def test_binary_units_scale_by_1024(self):
        assert MIB == 1024 * KIB
        assert GIB == 1024 * MIB
        assert TIB == 1024 * GIB

    def test_block_size_is_4kib(self):
        assert BLOCK_SIZE == 4096

    def test_time_units(self):
        assert SECOND == 1.0
        assert MILLISECOND == pytest.approx(1e-3)
        assert MICROSECOND == pytest.approx(1e-6)


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512.0 B"

    def test_kib(self):
        assert format_bytes(4096) == "4.0 KiB"

    def test_mib(self):
        assert format_bytes(3 * MIB) == "3.0 MiB"

    def test_gib(self):
        assert format_bytes(2 * GIB) == "2.0 GiB"

    def test_huge_values_use_tib(self):
        assert "TiB" in format_bytes(5 * TIB)
        assert "TiB" in format_bytes(5000 * TIB)


class TestFormatTime:
    def test_seconds(self):
        assert format_time(2.5) == "2.500 s"

    def test_milliseconds(self):
        assert format_time(0.012) == "12.0 ms"

    def test_microseconds(self):
        assert format_time(25e-6) == "25.0 us"

    def test_nanoseconds(self):
        assert format_time(300e-9) == "300.0 ns"
