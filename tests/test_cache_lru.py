"""Tests for the byte-budgeted LRU cache."""

import pytest

from repro.cache import LRUCache


def _cache(capacity=1024, overhead=0):
    return LRUCache(capacity, per_item_overhead_bytes=overhead)


class TestLRUBasics:
    def test_get_miss_returns_none(self):
        cache = _cache()
        assert cache.get("a") is None
        assert cache.stats.misses == 1

    def test_put_then_get(self):
        cache = _cache()
        cache.put("a", b"hello")
        assert cache.get("a") == b"hello"
        assert cache.stats.hits == 1

    def test_contains_does_not_touch_stats(self):
        cache = _cache()
        cache.put("a", b"x")
        assert cache.contains("a")
        assert not cache.contains("b")
        assert cache.stats.lookups == 0

    def test_used_bytes_includes_overhead(self):
        cache = _cache(overhead=10)
        cache.put("a", b"12345")
        assert cache.used_bytes == 15

    def test_replacing_key_updates_bytes(self):
        cache = _cache()
        cache.put("a", b"12345")
        cache.put("a", b"12")
        assert cache.used_bytes == 2
        assert cache.item_count == 1

    def test_invalidate(self):
        cache = _cache()
        cache.put("a", b"x")
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        assert cache.used_bytes == 0

    def test_clear(self):
        cache = _cache()
        cache.put("a", b"x")
        cache.put("b", b"y")
        cache.clear()
        assert cache.item_count == 0
        assert cache.used_bytes == 0

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(100, per_item_overhead_bytes=-1)


class TestLRUEviction:
    def test_lru_entry_evicted_first(self):
        cache = _cache(capacity=30)
        cache.put("a", b"0123456789")
        cache.put("b", b"0123456789")
        cache.put("c", b"0123456789")
        cache.get("a")  # touch a so b is now least recently used
        cache.put("d", b"0123456789")
        assert cache.contains("a")
        assert not cache.contains("b")

    def test_eviction_counted(self):
        cache = _cache(capacity=20)
        cache.put("a", b"0123456789")
        cache.put("b", b"0123456789")
        cache.put("c", b"0123456789")
        assert cache.stats.evictions >= 1

    def test_capacity_never_exceeded(self):
        cache = _cache(capacity=100, overhead=4)
        for index in range(200):
            cache.put(index, bytes(10))
            assert cache.used_bytes <= 100

    def test_value_larger_than_capacity_rejected(self):
        cache = _cache(capacity=8)
        assert cache.put("big", bytes(100)) is False
        assert cache.stats.rejected_inserts == 1
        assert cache.item_count == 0

    def test_get_refreshes_recency(self):
        cache = _cache(capacity=22)
        cache.put("a", b"0123456789")
        cache.put("b", b"0123456789")
        cache.get("a")
        cache.put("c", b"0123456789")  # evicts b, not a
        assert cache.contains("a")
        assert not cache.contains("b")

    def test_keys_iterate_lru_to_mru(self):
        cache = _cache()
        cache.put("a", b"1")
        cache.put("b", b"2")
        cache.get("a")
        assert list(cache.keys()) == ["b", "a"]


class TestLRUAccounting:
    def test_hit_rate(self):
        cache = _cache()
        cache.put("a", b"x")
        cache.get("a")
        cache.get("a")
        cache.get("missing")
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_cpu_seconds_accumulate(self):
        cache = _cache()
        cache.put("a", b"x")
        cache.get("a")
        assert cache.stats.cpu_seconds > 0

    def test_occupancy(self):
        cache = _cache(capacity=100)
        cache.put("a", bytes(50))
        assert cache.occupancy == pytest.approx(0.5)

    def test_reset_stats_keeps_contents(self):
        cache = _cache()
        cache.put("a", b"x")
        cache.get("a")
        cache.reset_stats()
        assert cache.stats.hits == 0
        assert cache.contains("a")
