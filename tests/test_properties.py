"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cache import LRUCache
from repro.core.pooled_cache import order_invariant_hash
from repro.dlrm.quantization import dequantize_rows, quantize_rows, quantized_row_bytes
from repro.sim.units import BLOCK_SIZE
from repro.storage import BlockLayout, ScatterGatherList
from repro.workload.locality import spatial_locality_ratio, temporal_locality_cdf


class TestQuantizationProperties:
    @given(
        rows=st.integers(min_value=1, max_value=8),
        dim=st.integers(min_value=1, max_value=96),
        bits=st.sampled_from([4, 8]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_error_bounded_by_quantisation_step(self, rows, dim, bits, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(0, 1, size=(rows, dim)).astype(np.float32)
        recovered = dequantize_rows(quantize_rows(values, bits=bits), dim=dim, bits=bits)
        span = values.max(axis=1) - values.min(axis=1)
        step = span / ((1 << bits) - 1)
        error = np.abs(recovered - values).max(axis=1)
        assert np.all(error <= step + 1e-5)

    @given(
        dim=st.integers(min_value=1, max_value=512),
        bits=st.sampled_from([4, 8]),
    )
    @settings(max_examples=60, deadline=None)
    def test_row_bytes_always_larger_than_payload(self, dim, bits):
        size = quantized_row_bytes(dim, bits)
        assert size > dim // (8 // bits) - 1
        assert size >= 8


class TestOrderInvariantHashProperties:
    @given(st.lists(st.integers(min_value=0, max_value=2**40), min_size=1, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_permutation_invariance(self, indices):
        shuffled = list(indices)
        np.random.default_rng(0).shuffle(shuffled)
        assert order_invariant_hash(indices) == order_invariant_hash(shuffled)

    @given(
        st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=20),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=100, deadline=None)
    def test_adding_an_element_changes_hash(self, indices, extra):
        assert order_invariant_hash(indices) != order_invariant_hash(indices + [extra])


class TestLRUCacheProperties:
    @given(
        operations=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=30),
                st.integers(min_value=1, max_value=120),
            ),
            min_size=1,
            max_size=200,
        ),
        capacity=st.integers(min_value=64, max_value=2048),
    )
    @settings(max_examples=60, deadline=None)
    def test_capacity_invariant_under_arbitrary_insertions(self, operations, capacity):
        cache = LRUCache(capacity, per_item_overhead_bytes=8)
        for key, size in operations:
            cache.put(key, bytes(size))
            assert cache.used_bytes <= capacity
        # internal accounting matches the entries actually present
        recomputed = sum(
            len(cache.get(key) or b"") + 8 for key in list(cache.keys())
        )
        assert cache.used_bytes == recomputed

    @given(
        keys=st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=50)
    )
    @settings(max_examples=50, deadline=None)
    def test_get_after_put_returns_value_if_present(self, keys):
        cache = LRUCache(10_000)
        for key in keys:
            cache.put(key, str(key).encode())
        for key in set(keys):
            value = cache.get(key)
            assert value is None or value == str(key).encode()


class TestBlockLayoutProperties:
    @given(
        num_rows=st.integers(min_value=1, max_value=3000),
        row_bytes=st.integers(min_value=9, max_value=BLOCK_SIZE),
    )
    @settings(max_examples=80, deadline=None)
    def test_every_row_locatable_and_within_block(self, num_rows, row_bytes):
        layout = BlockLayout([64 * 1024 * 1024])
        layout.add_table("t", num_rows, row_bytes)
        for row in (0, num_rows // 2, num_rows - 1):
            location = layout.locate("t", row)
            assert 0 <= location.offset < BLOCK_SIZE
            assert location.offset + location.length <= BLOCK_SIZE
            assert location.length == row_bytes

    @given(
        num_rows=st.integers(min_value=1, max_value=500),
        row_bytes=st.integers(min_value=9, max_value=512),
    )
    @settings(max_examples=50, deadline=None)
    def test_distinct_rows_never_overlap(self, num_rows, row_bytes):
        layout = BlockLayout([64 * 1024 * 1024])
        layout.add_table("t", num_rows, row_bytes)
        sample = range(0, num_rows, max(num_rows // 20, 1))
        seen = set()
        for row in sample:
            location = layout.locate("t", row)
            key = (location.lba, location.offset)
            assert key not in seen
            seen.add(key)


class TestSGLProperties:
    @given(
        offset=st.integers(min_value=0, max_value=BLOCK_SIZE - 1),
        length=st.integers(min_value=1, max_value=512),
    )
    @settings(max_examples=100, deadline=None)
    def test_sub_block_transfer_bounds(self, offset, length):
        assume(offset + length <= BLOCK_SIZE)
        sgl = ScatterGatherList()
        sgl.add(offset, length)
        transferred = sgl.transferred_bytes(sub_block_enabled=True)
        assert length <= transferred <= length + 8
        assert sgl.transferred_bytes(sub_block_enabled=False) == BLOCK_SIZE


class TestLocalityProperties:
    @given(
        trace=st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=500)
    )
    @settings(max_examples=60, deadline=None)
    def test_temporal_cdf_is_a_cdf(self, trace):
        unique_fraction, access_fraction = temporal_locality_cdf(trace)
        assert np.all(np.diff(access_fraction) >= -1e-12)
        assert access_fraction[-1] == pytest.approx(1.0)
        assert np.all((access_fraction > 0) & (access_fraction <= 1.0 + 1e-12))
        assert len(unique_fraction) == len(access_fraction)

    @given(
        trace=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=500),
        rows_per_block=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_spatial_ratio_bounded(self, trace, rows_per_block):
        ratio = spatial_locality_ratio(trace, rows_per_block)
        assert 0.0 < ratio <= 1.0
