"""Tests for the io_uring-like IO engine."""

import pytest

from repro.sim.units import BLOCK_SIZE, GB
from repro.storage import (
    BlockLayout,
    IOEngine,
    IOEngineConfig,
    IOMode,
    IORequest,
    SimulatedDevice,
    nand_flash_spec,
    optane_ssd_spec,
)


def _engine(config=None, num_devices=1, spec_factory=nand_flash_spec):
    devices = [SimulatedDevice(spec_factory(1 * GB), seed=i) for i in range(num_devices)]
    layout = BlockLayout([d.spec.capacity_bytes for d in devices])
    layout.add_table("t", num_rows=4096, row_bytes=128)
    engine = IOEngine(devices, config)
    return engine, layout


def _requests(layout, rows):
    return [
        IORequest(table_name="t", row_index=row, location=layout.locate("t", row))
        for row in rows
    ]


class TestIOEngineConfig:
    def test_polling_reduces_cpu_time_per_io(self):
        irq = IOEngineConfig(mode=IOMode.IRQ)
        polling = IOEngineConfig(mode=IOMode.POLLING)
        assert polling.cpu_time_per_io < irq.cpu_time_per_io

    def test_polling_iops_per_core_gain_is_50_percent(self):
        config = IOEngineConfig()
        gain = config.iops_per_core(IOMode.POLLING) / config.iops_per_core(IOMode.IRQ)
        assert gain == pytest.approx(1.5)

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            IOEngineConfig(max_outstanding_per_device=0)
        with pytest.raises(ValueError):
            IOEngineConfig(cpu_time_per_io_irq=0)
        with pytest.raises(ValueError):
            IOEngineConfig(polling_iops_per_core_gain=-0.1)


class TestIOEngineSubmission:
    def test_requests_complete_with_data(self):
        engine, layout = _engine()
        payload = bytes([9] * 128)
        location = layout.locate("t", 5)
        engine.devices[0].write_block(location.lba, payload, offset=location.offset)
        completed = engine.submit_row_reads(_requests(layout, [5]), start_time=0.0)
        assert completed[0].data == payload
        assert completed[0].completion_time > 0.0

    def test_batch_completion_time_is_max(self):
        engine, layout = _engine()
        completed = engine.submit_row_reads(_requests(layout, range(10)), 0.0)
        assert engine.batch_completion_time(completed) == max(
            r.completion_time for r in completed
        )

    def test_empty_batch_completion_rejected(self):
        engine, _ = _engine()
        with pytest.raises(ValueError):
            engine.batch_completion_time([])

    def test_stats_accumulate(self):
        engine, layout = _engine()
        engine.submit_row_reads(_requests(layout, range(20)), 0.0)
        assert engine.stats.ios_submitted == 20
        assert engine.stats.cpu_seconds > 0
        assert engine.stats.bytes_requested == 20 * 128

    def test_sub_block_reads_reduce_transfer(self):
        sub = IOEngineConfig(sub_block_reads=True)
        full = IOEngineConfig(sub_block_reads=False)
        engine_sub, layout_sub = _engine(sub)
        engine_full, layout_full = _engine(full)
        engine_sub.submit_row_reads(_requests(layout_sub, range(10)), 0.0)
        engine_full.submit_row_reads(_requests(layout_full, range(10)), 0.0)
        assert engine_sub.stats.bytes_transferred < engine_full.stats.bytes_transferred
        assert engine_full.stats.read_amplification == pytest.approx(BLOCK_SIZE / 128)

    def test_full_block_reads_pay_memcpy_overhead(self):
        full = IOEngineConfig(sub_block_reads=False)
        engine, layout = _engine(full)
        engine.submit_row_reads(_requests(layout, range(5)), 0.0)
        assert engine.stats.memcpy_seconds > 0

    def test_sub_block_reads_have_lower_latency(self):
        """The paper reports a 3-5% device latency reduction plus the saved
        host memcpy; the modelled effect must at least be directionally right."""
        sub_engine, sub_layout = _engine(IOEngineConfig(sub_block_reads=True))
        full_engine, full_layout = _engine(IOEngineConfig(sub_block_reads=False))
        sub = sub_engine.submit_row_reads(_requests(sub_layout, range(50)), 0.0)
        full = full_engine.submit_row_reads(_requests(full_layout, range(50)), 0.0)
        sub_mean = sum(r.latency for r in sub) / len(sub)
        full_mean = sum(r.latency for r in full) / len(full)
        assert sub_mean < full_mean

    def test_queue_depth_limit_throttles_submissions(self):
        config = IOEngineConfig(max_outstanding_per_device=4, max_outstanding_per_table=4)
        engine, layout = _engine(config)
        engine.submit_row_reads(_requests(layout, range(64)), 0.0)
        assert engine.stats.throttled_submissions > 0

    def test_throttling_spreads_submit_times(self):
        config = IOEngineConfig(max_outstanding_per_device=2, max_outstanding_per_table=2)
        engine, layout = _engine(config)
        completed = engine.submit_row_reads(_requests(layout, range(32)), 0.0)
        submit_times = {round(r.submit_time, 9) for r in completed}
        assert len(submit_times) > 1

    def test_unknown_device_index_rejected(self):
        engine, layout = _engine()
        request = _requests(layout, [0])[0]
        bad_location = type(request.location)(
            device_index=5, lba=0, offset=0, length=128
        )
        request.location = bad_location
        with pytest.raises(IndexError):
            engine.submit_row_reads([request], 0.0)

    def test_reset_stats_clears_everything(self):
        engine, layout = _engine()
        engine.submit_row_reads(_requests(layout, range(5)), 0.0)
        engine.reset_stats()
        assert engine.stats.ios_submitted == 0

    def test_engine_requires_devices(self):
        with pytest.raises(ValueError):
            IOEngine([], IOEngineConfig())

    def test_optane_batch_faster_than_nand_batch(self):
        nand_engine, nand_layout = _engine(spec_factory=nand_flash_spec)
        optane_engine, optane_layout = _engine(spec_factory=optane_ssd_spec)
        nand = nand_engine.submit_row_reads(_requests(nand_layout, range(100)), 0.0)
        optane = optane_engine.submit_row_reads(_requests(optane_layout, range(100)), 0.0)
        assert optane_engine.batch_completion_time(optane) < nand_engine.batch_completion_time(nand)
