"""Tests for the io_uring-like IO engine."""

import numpy as np
import pytest

from repro.sim.units import BLOCK_SIZE, GB
from repro.storage import (
    BlockLayout,
    IOEngine,
    IOEngineConfig,
    IOMode,
    IORequest,
    IORequestBatch,
    SimulatedDevice,
    nand_flash_spec,
    optane_ssd_spec,
)


def _engine(config=None, num_devices=1, spec_factory=nand_flash_spec):
    devices = [SimulatedDevice(spec_factory(1 * GB), seed=i) for i in range(num_devices)]
    layout = BlockLayout([d.spec.capacity_bytes for d in devices])
    layout.add_table("t", num_rows=4096, row_bytes=128)
    engine = IOEngine(devices, config)
    return engine, layout


def _requests(layout, rows):
    return [
        IORequest(table_name="t", row_index=row, location=layout.locate("t", row))
        for row in rows
    ]


class TestIOEngineConfig:
    def test_polling_reduces_cpu_time_per_io(self):
        irq = IOEngineConfig(mode=IOMode.IRQ)
        polling = IOEngineConfig(mode=IOMode.POLLING)
        assert polling.cpu_time_per_io < irq.cpu_time_per_io

    def test_polling_iops_per_core_gain_is_50_percent(self):
        config = IOEngineConfig()
        gain = config.iops_per_core(IOMode.POLLING) / config.iops_per_core(IOMode.IRQ)
        assert gain == pytest.approx(1.5)

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            IOEngineConfig(max_outstanding_per_device=0)
        with pytest.raises(ValueError):
            IOEngineConfig(cpu_time_per_io_irq=0)
        with pytest.raises(ValueError):
            IOEngineConfig(polling_iops_per_core_gain=-0.1)


class TestIOEngineSubmission:
    def test_requests_complete_with_data(self):
        engine, layout = _engine()
        payload = bytes([9] * 128)
        location = layout.locate("t", 5)
        engine.devices[0].write_block(location.lba, payload, offset=location.offset)
        completed = engine.submit_row_reads(_requests(layout, [5]), start_time=0.0)
        assert completed[0].data == payload
        assert completed[0].completion_time > 0.0

    def test_batch_completion_time_is_max(self):
        engine, layout = _engine()
        completed = engine.submit_row_reads(_requests(layout, range(10)), 0.0)
        assert engine.batch_completion_time(completed) == max(
            r.completion_time for r in completed
        )

    def test_empty_batch_completion_rejected(self):
        engine, _ = _engine()
        with pytest.raises(ValueError):
            engine.batch_completion_time([])

    def test_stats_accumulate(self):
        engine, layout = _engine()
        engine.submit_row_reads(_requests(layout, range(20)), 0.0)
        assert engine.stats.ios_submitted == 20
        assert engine.stats.cpu_seconds > 0
        assert engine.stats.bytes_requested == 20 * 128

    def test_sub_block_reads_reduce_transfer(self):
        sub = IOEngineConfig(sub_block_reads=True)
        full = IOEngineConfig(sub_block_reads=False)
        engine_sub, layout_sub = _engine(sub)
        engine_full, layout_full = _engine(full)
        engine_sub.submit_row_reads(_requests(layout_sub, range(10)), 0.0)
        engine_full.submit_row_reads(_requests(layout_full, range(10)), 0.0)
        assert engine_sub.stats.bytes_transferred < engine_full.stats.bytes_transferred
        assert engine_full.stats.read_amplification == pytest.approx(BLOCK_SIZE / 128)

    def test_full_block_reads_pay_memcpy_overhead(self):
        full = IOEngineConfig(sub_block_reads=False)
        engine, layout = _engine(full)
        engine.submit_row_reads(_requests(layout, range(5)), 0.0)
        assert engine.stats.memcpy_seconds > 0

    def test_sub_block_reads_have_lower_latency(self):
        """The paper reports a 3-5% device latency reduction plus the saved
        host memcpy; the modelled effect must at least be directionally right."""
        sub_engine, sub_layout = _engine(IOEngineConfig(sub_block_reads=True))
        full_engine, full_layout = _engine(IOEngineConfig(sub_block_reads=False))
        sub = sub_engine.submit_row_reads(_requests(sub_layout, range(50)), 0.0)
        full = full_engine.submit_row_reads(_requests(full_layout, range(50)), 0.0)
        sub_mean = sum(r.latency for r in sub) / len(sub)
        full_mean = sum(r.latency for r in full) / len(full)
        assert sub_mean < full_mean

    def test_queue_depth_limit_throttles_submissions(self):
        config = IOEngineConfig(max_outstanding_per_device=4, max_outstanding_per_table=4)
        engine, layout = _engine(config)
        engine.submit_row_reads(_requests(layout, range(64)), 0.0)
        assert engine.stats.throttled_submissions > 0

    def test_throttling_spreads_submit_times(self):
        config = IOEngineConfig(max_outstanding_per_device=2, max_outstanding_per_table=2)
        engine, layout = _engine(config)
        completed = engine.submit_row_reads(_requests(layout, range(32)), 0.0)
        submit_times = {round(r.submit_time, 9) for r in completed}
        assert len(submit_times) > 1

    def test_unknown_device_index_rejected(self):
        engine, layout = _engine()
        request = _requests(layout, [0])[0]
        bad_location = type(request.location)(
            device_index=5, lba=0, offset=0, length=128
        )
        request.location = bad_location
        with pytest.raises(IndexError):
            engine.submit_row_reads([request], 0.0)

    def test_reset_stats_clears_everything(self):
        engine, layout = _engine()
        engine.submit_row_reads(_requests(layout, range(5)), 0.0)
        engine.reset_stats()
        assert engine.stats.ios_submitted == 0

    def test_engine_requires_devices(self):
        with pytest.raises(ValueError):
            IOEngine([], IOEngineConfig())

    def test_optane_batch_faster_than_nand_batch(self):
        nand_engine, nand_layout = _engine(spec_factory=nand_flash_spec)
        optane_engine, optane_layout = _engine(spec_factory=optane_ssd_spec)
        nand = nand_engine.submit_row_reads(_requests(nand_layout, range(100)), 0.0)
        optane = optane_engine.submit_row_reads(_requests(optane_layout, range(100)), 0.0)
        assert optane_engine.batch_completion_time(optane) < nand_engine.batch_completion_time(nand)


def _batch_from_rows(layout, rows):
    locations = [layout.locate("t", row) for row in rows]
    return IORequestBatch(
        table_name="t",
        device_index=np.array([loc.device_index for loc in locations], dtype=np.int64),
        lba=np.array([loc.lba for loc in locations], dtype=np.int64),
        offset=np.array([loc.offset for loc in locations], dtype=np.int64),
        length=np.array([loc.length for loc in locations], dtype=np.int64),
    )


def _pool_multisets(engine):
    per_device = {
        index: sorted(pool) for index, pool in engine._outstanding_per_device.items()
    }
    per_table = {
        name: sorted(pool) for name, pool in engine._outstanding_per_table.items()
    }
    return per_device, per_table


def _submit_both_ways(rows, config=None, num_devices=2, waves=1, spec_factory=nand_flash_spec):
    """Run the same workload through the scalar and batched engine APIs.

    Fresh engines over identically-seeded devices; ``waves`` repeats the
    submission so outstanding-IO pools carry state between batches.
    Returns ``(scalar_requests, batch, scalar_engine, batched_engine)``
    of the last wave.
    """
    scalar_engine, scalar_layout = _engine(config, num_devices, spec_factory)
    batched_engine, batched_layout = _engine(config, num_devices, spec_factory)
    completed = batch = None
    start = 0.0
    for _ in range(waves):
        completed = scalar_engine.submit_row_reads(_requests(scalar_layout, rows), start)
        batch = batched_engine.submit_row_reads_batch(
            _batch_from_rows(batched_layout, rows), start
        )
        start += 1e-5
    return completed, batch, scalar_engine, batched_engine


class TestBatchedSubmissionParity:
    """submit_row_reads_batch must replay the scalar path bit for bit."""

    CONFIGS = {
        "default": None,
        "throttled": IOEngineConfig(
            max_outstanding_per_device=4, max_outstanding_per_table=2
        ),
        "full-block": IOEngineConfig(sub_block_reads=False),
        "polling": IOEngineConfig(mode=IOMode.POLLING),
    }

    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_batched_matches_scalar(self, name):
        rows = list(range(40)) + [3, 3, 17, 5]  # repeats share blocks
        completed, batch, scalar, batched = _submit_both_ways(
            rows, self.CONFIGS[name], waves=3
        )
        assert [r.submit_time for r in completed] == batch.submit_time.tolist()
        assert [r.completion_time for r in completed] == batch.completion_time.tolist()
        assert [r.transferred_bytes for r in completed] == batch.transferred_bytes.tolist()
        assert [r.host_overhead for r in completed] == batch.host_overhead.tolist()
        assert scalar.stats == batched.stats
        assert _pool_multisets(scalar) == _pool_multisets(batched)
        for device_a, device_b in zip(scalar.devices, batched.devices):
            assert device_a.stats == device_b.stats
            assert device_a.channel_free.tolist() == device_b.channel_free.tolist()
            assert device_a.rng.bit_generator.state == device_b.rng.bit_generator.state

    def test_tail_latency_rng_stream_matches(self):
        # Enough IOs on a tail-prone device that the batched pre-draw must
        # consume the PCG64 stream exactly like per-IO scalar draws.
        rows = list(range(500)) * 2
        _, _, scalar, batched = _submit_both_ways(
            rows, num_devices=1, spec_factory=nand_flash_spec
        )
        assert scalar.devices[0].stats.tail_events > 0
        assert batched.devices[0].stats.tail_events == scalar.devices[0].stats.tail_events
        assert (
            scalar.devices[0].rng.bit_generator.state
            == batched.devices[0].rng.bit_generator.state
        )

    def test_empty_batch_is_a_no_op(self):
        engine, layout = _engine()
        batch = engine.submit_row_reads_batch(_batch_from_rows(layout, []), 0.0)
        assert len(batch) == 0
        assert engine.stats.ios_submitted == 0

    def test_negative_start_time_rejected(self):
        engine, layout = _engine()
        with pytest.raises(ValueError):
            engine.submit_row_reads_batch(_batch_from_rows(layout, [0]), -1.0)

    def test_unknown_device_index_rejected(self):
        engine, layout = _engine()
        batch = _batch_from_rows(layout, [0])
        batch.device_index[0] = 5
        with pytest.raises(IndexError):
            engine.submit_row_reads_batch(batch, 0.0)

    def test_invalid_range_rejected(self):
        engine, layout = _engine()
        batch = _batch_from_rows(layout, [0])
        batch.offset[0] = BLOCK_SIZE - 4
        batch.length[0] = 128
        with pytest.raises(ValueError):
            engine.submit_row_reads_batch(batch, 0.0)


class TestGateEdgeCases:
    """Queue-depth gating edge cases, identical between both gate replays."""

    def _gated_submits(self, config, rows, batched):
        engine, layout = _engine(config)
        if batched:
            batch = engine.submit_row_reads_batch(_batch_from_rows(layout, rows), 0.0)
            return batch.submit_time.tolist(), engine
        completed = engine.submit_row_reads(_requests(layout, rows), 0.0)
        return [r.submit_time for r in completed], engine

    @pytest.mark.parametrize("batched", [False, True])
    def test_submissions_below_limit_are_not_throttled(self, batched):
        config = IOEngineConfig(max_outstanding_per_device=8, max_outstanding_per_table=8)
        submits, engine = self._gated_submits(config, range(8), batched)
        # Exactly `limit` submissions: the gate triggers only when the pool
        # already holds `limit` live IOs, so the batch fits untouched.
        assert submits == [0.0] * 8
        assert engine.stats.throttled_submissions == 0

    @pytest.mark.parametrize("batched", [False, True])
    def test_limit_reached_exactly_throttles_next_submission(self, batched):
        config = IOEngineConfig(max_outstanding_per_device=8, max_outstanding_per_table=8)
        submits, engine = self._gated_submits(config, range(9), batched)
        assert submits[:8] == [0.0] * 8
        assert submits[8] > 0.0
        assert engine.stats.throttled_submissions == 1

    @pytest.mark.parametrize("batched", [False, True])
    def test_table_limit_gates_when_tighter_than_device_limit(self, batched):
        config = IOEngineConfig(max_outstanding_per_device=64, max_outstanding_per_table=2)
        submits, engine = self._gated_submits(config, range(12), batched)
        assert submits[:2] == [0.0, 0.0]
        assert submits[2] > 0.0
        # The gate prunes every pool entry <= the gated time, so two IOs
        # completing at the identical instant free two slots at once — the
        # throttle count is below one-per-gated-submission but never zero.
        assert 0 < engine.stats.throttled_submissions <= 10

    @pytest.mark.parametrize("batched", [False, True])
    def test_interleaved_device_and_table_throttling(self, batched):
        config = IOEngineConfig(max_outstanding_per_device=3, max_outstanding_per_table=2)
        submits, engine = self._gated_submits(config, range(16), batched)
        assert engine.stats.throttled_submissions > 0
        assert submits == sorted(submits)

    def test_throttled_counting_identical_between_gates(self):
        config = IOEngineConfig(max_outstanding_per_device=3, max_outstanding_per_table=2)
        _, _, scalar, batched = _submit_both_ways(range(32), config, waves=2)
        assert scalar.stats.throttled_submissions > 0
        assert scalar.stats.throttled_submissions == batched.stats.throttled_submissions


class TestResetSplit:
    """reset_stats owns counters, reset_queues owns behavioural state."""

    def test_reset_stats_leaves_outstanding_pools(self):
        config = IOEngineConfig(max_outstanding_per_device=4, max_outstanding_per_table=4)
        engine, layout = _engine(config)
        engine.submit_row_reads(_requests(layout, range(16)), 0.0)
        pools_before = _pool_multisets(engine)
        assert any(pools_before[0].values())
        engine.reset_stats()
        assert engine.stats.ios_submitted == 0
        assert engine.stats.throttled_submissions == 0
        assert _pool_multisets(engine) == pools_before
        # The surviving pools still gate: resubmitting immediately throttles.
        engine.submit_row_reads(_requests(layout, range(16)), 0.0)
        assert engine.stats.throttled_submissions > 0

    def test_reset_queues_leaves_stats(self):
        config = IOEngineConfig(max_outstanding_per_device=4, max_outstanding_per_table=4)
        engine, layout = _engine(config)
        engine.submit_row_reads(_requests(layout, range(16)), 0.0)
        stats_before = engine.stats
        engine.reset_queues()
        assert engine.stats is stats_before
        per_device, per_table = _pool_multisets(engine)
        assert all(pool == [] for pool in per_device.values())
        assert per_table == {}

    def test_reset_queues_forgets_gating_state(self):
        config = IOEngineConfig(max_outstanding_per_device=4, max_outstanding_per_table=4)
        engine, layout = _engine(config)
        engine.submit_row_reads(_requests(layout, range(16)), 0.0)
        engine.reset_queues()
        engine.reset_stats()
        engine.submit_row_reads(_requests(layout, range(4)), 0.0)
        # With the pools cleared, a small burst fits without throttling.
        assert engine.stats.throttled_submissions == 0
