"""Tests for the analytic loaded-latency model (Figure 3 behaviour)."""

import pytest

from repro.sim.units import MICROSECOND
from repro.storage import LoadedLatencyModel, nand_flash_spec, optane_ssd_spec


class TestLoadedLatency:
    def test_unloaded_latency_close_to_base(self):
        model = LoadedLatencyModel(nand_flash_spec())
        latency = model.expected_latency(offered_iops=0.0)
        assert latency >= model.spec.base_read_latency
        assert latency <= model.spec.base_read_latency * 1.5

    def test_latency_monotonically_increases_with_load(self):
        model = LoadedLatencyModel(nand_flash_spec())
        max_iops = model.spec.max_read_iops
        latencies = [
            model.expected_latency(load * max_iops) for load in (0.1, 0.5, 0.8, 0.95)
        ]
        assert latencies == sorted(latencies)

    def test_latency_blows_up_near_saturation(self):
        model = LoadedLatencyModel(nand_flash_spec())
        low = model.expected_latency(0.2 * model.spec.max_read_iops)
        high = model.expected_latency(0.98 * model.spec.max_read_iops)
        assert high > 3 * low

    def test_optane_stays_in_tens_of_microseconds_at_moderate_load(self):
        model = LoadedLatencyModel(optane_ssd_spec())
        latency = model.expected_latency(0.5 * model.spec.max_read_iops)
        assert latency < 100 * MICROSECOND

    def test_optane_faster_than_nand_at_same_absolute_load(self):
        nand = LoadedLatencyModel(nand_flash_spec())
        optane = LoadedLatencyModel(optane_ssd_spec())
        offered = 0.4e6  # 400 kIOPS: most of Nand's ceiling, a tenth of Optane's
        assert optane.expected_latency(offered) < nand.expected_latency(offered)

    def test_utilisation_computation(self):
        model = LoadedLatencyModel(nand_flash_spec())
        assert model.utilisation(0.25e6) == pytest.approx(0.5)

    def test_negative_offered_iops_rejected(self):
        with pytest.raises(ValueError):
            LoadedLatencyModel(nand_flash_spec()).utilisation(-1.0)

    def test_transfer_time_scales_with_bytes(self):
        model = LoadedLatencyModel(nand_flash_spec())
        assert model.transfer_time(8192) == pytest.approx(2 * model.transfer_time(4096))

    def test_negative_transfer_bytes_rejected(self):
        with pytest.raises(ValueError):
            LoadedLatencyModel(nand_flash_spec()).transfer_time(-1)


class TestMaxIopsWithinLatency:
    def test_generous_budget_allows_near_max_iops(self):
        model = LoadedLatencyModel(optane_ssd_spec())
        allowed = model.max_iops_within_latency(5e-3)
        assert allowed > 0.9 * model.spec.max_read_iops

    def test_tight_budget_forces_underutilisation_of_nand(self):
        model = LoadedLatencyModel(nand_flash_spec())
        allowed = model.max_iops_within_latency(150 * MICROSECOND)
        assert 0 < allowed < model.spec.max_read_iops

    def test_impossible_budget_returns_zero(self):
        model = LoadedLatencyModel(nand_flash_spec())
        assert model.max_iops_within_latency(1 * MICROSECOND) == 0.0

    def test_returned_iops_actually_meets_budget(self):
        model = LoadedLatencyModel(nand_flash_spec())
        budget = 200 * MICROSECOND
        allowed = model.max_iops_within_latency(budget)
        assert model.expected_latency(allowed) <= budget * 1.001

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError):
            LoadedLatencyModel(nand_flash_spec()).max_iops_within_latency(0.0)

    def test_nand_must_be_underutilised_more_than_optane(self):
        """Section 5.2: Nand must be considerably under-utilised to keep
        latency low, Optane barely at all."""
        budget = 150 * MICROSECOND
        nand = LoadedLatencyModel(nand_flash_spec())
        optane = LoadedLatencyModel(optane_ssd_spec())
        nand_fraction = nand.max_iops_within_latency(budget) / nand.spec.max_read_iops
        optane_fraction = optane.max_iops_within_latency(budget) / optane.spec.max_read_iops
        assert optane_fraction > nand_fraction
