"""Tests for the query generator."""

import numpy as np
import pytest

from repro.workload import QueryGenerator, WorkloadConfig, generate_arrival_times

from helpers import small_model


class TestWorkloadConfig:
    def test_defaults_valid(self):
        config = WorkloadConfig()
        assert config.item_batch > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(item_batch=0)
        with pytest.raises(ValueError):
            WorkloadConfig(num_users=0)
        with pytest.raises(ValueError):
            WorkloadConfig(sequence_repeat_probability=1.5)
        with pytest.raises(ValueError):
            WorkloadConfig(sequence_pool_size=0)
        with pytest.raises(ValueError):
            WorkloadConfig(pooling_factor_jitter=1.0)


class TestQueryGenerator:
    def test_queries_cover_all_tables(self):
        model = small_model()
        query = QueryGenerator(model, WorkloadConfig(item_batch=2)).generate_query()
        assert set(query.user_indices) == {s.name for s in model.user_table_specs}
        assert set(query.item_indices) == {s.name for s in model.item_table_specs}

    def test_item_batch_respected(self):
        model = small_model()
        query = QueryGenerator(model, WorkloadConfig(item_batch=4)).generate_query()
        assert query.item_batch == 4

    def test_item_batch_override_per_call(self):
        model = small_model()
        generator = QueryGenerator(model, WorkloadConfig(item_batch=4))
        assert generator.generate_query(item_batch=2).item_batch == 2

    def test_indices_within_table_range(self):
        model = small_model(num_rows=64)
        queries = QueryGenerator(model, WorkloadConfig(item_batch=2)).generate(20)
        for query in queries:
            for name, indices in query.user_indices.items():
                assert max(indices) < model.table(name).spec.num_rows

    def test_indices_unique_within_request(self):
        model = small_model()
        queries = QueryGenerator(model, WorkloadConfig(item_batch=2)).generate(20)
        for query in queries:
            for indices in query.user_indices.values():
                assert len(indices) == len(set(indices))

    def test_pooling_factor_near_spec_average(self):
        model = small_model()
        generator = QueryGenerator(model, WorkloadConfig(item_batch=1))
        queries = generator.generate(200)
        spec = model.user_table_specs[0]
        lengths = [len(q.user_indices[spec.name]) for q in queries]
        assert abs(np.mean(lengths) - spec.avg_pooling_factor) < spec.avg_pooling_factor * 0.5

    def test_deterministic_given_seed(self):
        model = small_model()
        a = QueryGenerator(model, WorkloadConfig(item_batch=2), seed=5).generate(5)
        b = QueryGenerator(model, WorkloadConfig(item_batch=2), seed=5).generate(5)
        for qa, qb in zip(a, b):
            assert qa.user_indices == qb.user_indices
            assert qa.user_id == qb.user_id

    def test_query_ids_increment(self):
        model = small_model()
        queries = QueryGenerator(model, WorkloadConfig(item_batch=2)).generate(5)
        assert [q.query_id for q in queries] == list(range(5))

    def test_sequence_repetition_produces_exact_repeats(self):
        model = small_model()
        config = WorkloadConfig(item_batch=1, sequence_repeat_probability=0.5)
        generator = QueryGenerator(model, config, seed=0)
        queries = generator.generate(200)
        table = model.user_table_specs[0].name
        seen = set()
        repeats = 0
        for query in queries:
            key = tuple(sorted(query.user_indices[table]))
            if key in seen:
                repeats += 1
            seen.add(key)
        assert repeats > 10

    def test_zero_repeat_probability_rarely_repeats(self):
        model = small_model(num_rows=4096)
        config = WorkloadConfig(
            item_batch=1,
            sequence_repeat_probability=0.0,
            user_reuse_probability=0.0,
        )
        generator = QueryGenerator(model, config, seed=0)
        queries = generator.generate(100)
        table = model.user_table_specs[0].name
        keys = [tuple(sorted(q.user_indices[table])) for q in queries]
        assert len(set(keys)) > 90

    def test_access_trace_flattens_user_and_item_accesses(self):
        model = small_model()
        generator = QueryGenerator(model, WorkloadConfig(item_batch=2))
        queries = generator.generate(10)
        user_table = model.user_table_specs[0].name
        item_table = model.item_table_specs[0].name
        user_trace = generator.access_trace(queries, user_table)
        item_trace = generator.access_trace(queries, item_table)
        assert len(user_trace) == sum(len(q.user_indices[user_table]) for q in queries)
        assert len(item_trace) == sum(
            len(indices) for q in queries for indices in q.item_indices[item_table]
        )

    def test_invalid_generate_count_rejected(self):
        model = small_model()
        with pytest.raises(ValueError):
            QueryGenerator(model).generate(0)

    def test_generate_equals_repeated_generate_query(self):
        # The batched per-purpose RNG draws must reproduce the one-query-at-a-
        # time stream exactly, whatever the chunking.
        model = small_model()
        whole = QueryGenerator(model, WorkloadConfig(item_batch=3), seed=7).generate(30)
        stepper = QueryGenerator(model, WorkloadConfig(item_batch=3), seed=7)
        single = [stepper.generate_query() for _ in range(30)]
        chunker = QueryGenerator(model, WorkloadConfig(item_batch=3), seed=7)
        chunked = chunker.generate(11) + chunker.generate(19)
        for reference, a, b in zip(whole, single, chunked):
            for other in (a, b):
                assert other.user_id == reference.user_id
                assert other.user_indices == reference.user_indices
                assert other.item_indices == reference.item_indices
                assert np.array_equal(other.dense_features, reference.dense_features)

    def test_golden_trace_pins_rng_stream(self):
        # Frozen sample of the named per-purpose RNG streams: any change to
        # stream naming, draw order or draw shapes shows up here first.
        model = small_model()
        queries = QueryGenerator(model, WorkloadConfig(item_batch=2), seed=42).generate(3)
        assert [query.user_id for query in queries] == [4701, 3789, 9086]
        assert queries[0].user_indices["user_0"] == [37, 143, 172, 254, 194]
        assert queries[1].user_indices["user_0"] == [37, 106, 139, 97, 87, 86]
        assert queries[2].user_indices["user_1"] == [42, 140, 206, 94]
        assert queries[0].item_indices["item_0"] == [[14, 68], [152, 200, 227]]
        assert queries[0].dense_features == pytest.approx(
            [0.852983, -0.196222, -0.510966, -0.897254], abs=1e-6
        )


class TestGenerateArrivalTimes:
    def test_constant_spacing(self):
        times = generate_arrival_times(5, process="constant", offered_qps=10.0)
        assert times == pytest.approx([0.0, 0.1, 0.2, 0.3, 0.4])

    def test_poisson_mean_rate_and_determinism(self):
        times = generate_arrival_times(2000, process="poisson", offered_qps=100.0, seed=1)
        again = generate_arrival_times(2000, process="poisson", offered_qps=100.0, seed=1)
        assert isinstance(times, np.ndarray)
        assert np.array_equal(times, again)
        assert times[0] == pytest.approx(0.0)
        assert all(b >= a for a, b in zip(times, times[1:]))
        measured_rate = (len(times) - 1) / (times[-1] - times[0])
        assert measured_rate == pytest.approx(100.0, rel=0.1)

    def test_poisson_different_seeds_differ(self):
        a = generate_arrival_times(50, process="poisson", offered_qps=10.0, seed=0)
        b = generate_arrival_times(50, process="poisson", offered_qps=10.0, seed=1)
        assert not np.array_equal(a, b)

    def test_trace_replay_and_start_offset(self):
        trace = [0.0, 0.5, 1.5, 9.0]
        times = generate_arrival_times(3, process="trace", trace=trace, start_time=1.0)
        assert times == pytest.approx([1.0, 1.5, 2.5])

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            generate_arrival_times(0, process="constant", offered_qps=1.0)
        with pytest.raises(ValueError):
            generate_arrival_times(5, process="warp-drive", offered_qps=1.0)
        with pytest.raises(ValueError):
            generate_arrival_times(5, process="poisson", offered_qps=0.0)
        with pytest.raises(ValueError):
            generate_arrival_times(5, process="constant", offered_qps=None)
        with pytest.raises(ValueError):
            generate_arrival_times(5, process="trace", trace=[0.0, 1.0])  # too short
        with pytest.raises(ValueError):
            generate_arrival_times(2, process="trace", trace=[1.0, 0.5])  # decreasing
        with pytest.raises(ValueError):
            generate_arrival_times(1, process="constant", offered_qps=1.0, start_time=-1.0)
