"""Tests for the DLRM model."""

import numpy as np
import pytest

from repro.dlrm import DLRMModel, MLP

from helpers import small_model


class TestDLRMModelStructure:
    def test_user_and_item_specs_split(self):
        model = small_model(num_user=3, num_item=2)
        assert len(model.user_table_specs) == 3
        assert len(model.item_table_specs) == 2
        assert len(model.table_specs) == 5

    def test_embedding_size_bytes(self):
        model = small_model()
        assert model.embedding_size_bytes == sum(
            t.size_bytes for t in model.tables.values()
        )

    def test_table_accessor_raises_for_unknown(self):
        model = small_model()
        with pytest.raises(KeyError):
            model.table("nope")

    def test_num_parameters_counts_embeddings_and_mlps(self):
        model = small_model(num_user=1, num_item=1, num_rows=32, dim=8)
        embedding_params = 2 * 32 * 8
        expected = (
            embedding_params
            + model.bottom_mlp.num_parameters()
            + model.top_mlp.num_parameters()
        )
        assert model.num_parameters() == expected

    def test_mismatched_top_mlp_rejected(self):
        model = small_model()
        with pytest.raises(ValueError):
            DLRMModel(
                name="bad",
                bottom_mlp=model.bottom_mlp,
                top_mlp=MLP([3, 1]),
                tables=model.tables,
                dense_dim=model.dense_dim,
            )

    def test_mismatched_bottom_mlp_rejected(self):
        model = small_model()
        with pytest.raises(ValueError):
            DLRMModel(
                name="bad",
                bottom_mlp=MLP([99, 8]),
                top_mlp=model.top_mlp,
                tables=model.tables,
                dense_dim=model.dense_dim,
            )

    def test_invalid_item_batch_rejected(self):
        model = small_model()
        with pytest.raises(ValueError):
            DLRMModel(
                name="bad",
                bottom_mlp=model.bottom_mlp,
                top_mlp=model.top_mlp,
                tables=model.tables,
                dense_dim=model.dense_dim,
                item_batch=0,
            )


class TestDLRMForward:
    def test_forward_returns_finite_scalar(self):
        model = small_model()
        indices = {name: [0, 1] for name in model.tables}
        score = model.forward(np.zeros(model.dense_dim, dtype=np.float32), indices)
        assert isinstance(score, float)
        assert np.isfinite(score)

    def test_forward_deterministic(self):
        model = small_model(seed=4)
        dense = np.linspace(-1, 1, model.dense_dim).astype(np.float32)
        indices = {name: [2, 5, 7] for name in model.tables}
        assert model.forward(dense, indices) == model.forward(dense, indices)

    def test_score_requires_all_tables(self):
        model = small_model()
        with pytest.raises(KeyError):
            model.score(np.zeros(model.dense_dim), {})

    def test_score_independent_of_pooled_dict_order(self):
        model = small_model()
        dense = np.ones(model.dense_dim, dtype=np.float32)
        indices = {name: [1, 2] for name in model.tables}
        pooled = model.pooled_embeddings(indices)
        reordered = dict(reversed(list(pooled.items())))
        assert model.score(dense, pooled) == pytest.approx(model.score(dense, reordered))

    def test_score_rejects_wrong_dense_shape(self):
        model = small_model()
        pooled = model.pooled_embeddings({name: [0] for name in model.tables})
        with pytest.raises(ValueError):
            model.score(np.zeros(model.dense_dim + 1), pooled)

    def test_pooled_embeddings_match_table_bag(self):
        model = small_model()
        indices = {name: [1, 3, 4] for name in model.tables}
        pooled = model.pooled_embeddings(indices)
        for name, vector in pooled.items():
            np.testing.assert_allclose(vector, model.table(name).bag(indices[name]))

    def test_different_indices_change_score(self):
        model = small_model()
        dense = np.ones(model.dense_dim, dtype=np.float32)
        score_a = model.forward(dense, {name: [0] for name in model.tables})
        score_b = model.forward(dense, {name: [1] for name in model.tables})
        assert score_a != score_b

    def test_mlp_flops_positive(self):
        assert small_model().mlp_flops_per_sample() > 0
