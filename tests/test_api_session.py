"""Tests for ScenarioSpec round-tripping, the Session facade and the CLI."""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import (
    ComputeSpec,
    InferenceEngine,
    M1_SPEC,
    QueryGenerator,
    ScenarioSpec,
    SDMConfig,
    ServingSimulator,
    Session,
    SoftwareDefinedMemory,
    WorkloadConfig,
    build_scaled_model,
)
from repro.api import BackendChoice, ModelChoice, ServingChoice, TrafficSpec, WorkloadChoice
from repro.api.cli import main as cli_main
from repro.sim.units import MIB
from repro.storage import Technology

REPO_ROOT = Path(__file__).resolve().parent.parent

QUICKSTART_SPEC = ScenarioSpec(
    name="quickstart-parity",
    model=ModelChoice(spec="M1", max_tables_per_group=4, max_rows_per_table=2048, item_batch=4),
    backend=BackendChoice(
        name="sdm",
        options=dict(
            device_technology=Technology.NAND_FLASH,
            num_devices=2,
            row_cache_capacity_bytes=4 * MIB,
            pooled_cache_capacity_bytes=1 * MIB,
        ),
    ),
    workload=WorkloadChoice(num_queries=100, item_batch=4, num_users=200, seed=0),
    serving=ServingChoice(concurrency=2, warmup_queries=20),
)


class TestScenarioSpec:
    def test_to_dict_from_dict_round_trip(self):
        spec = QUICKSTART_SPEC
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = QUICKSTART_SPEC
        rebuilt = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        # Technology is a str enum, so the JSON string compares equal.
        assert rebuilt == spec

    def test_defaults_round_trip(self):
        assert ScenarioSpec.from_dict(ScenarioSpec().to_dict()) == ScenarioSpec()

    def test_from_dict_rejects_unknown_top_level_keys(self):
        with pytest.raises(ValueError, match="unknown ScenarioSpec keys"):
            ScenarioSpec.from_dict({"modle": {}})

    def test_from_dict_rejects_unknown_section_keys(self):
        with pytest.raises(ValueError, match="unknown WorkloadChoice keys"):
            ScenarioSpec.from_dict({"workload": {"num_queries": 10, "qps": 1}})

    def test_from_dict_rejects_non_mapping_sections(self):
        with pytest.raises(ValueError, match="must be a mapping"):
            ScenarioSpec.from_dict({"model": None})

    def test_unknown_model_name_rejected(self):
        with pytest.raises(ValueError, match="unknown model spec"):
            ModelChoice(spec="M9")

    def test_replace_section_field(self):
        spec = ScenarioSpec().replace("serving.concurrency", 8)
        assert spec.serving.concurrency == 8
        assert ScenarioSpec().serving.concurrency == 2  # original untouched

    def test_replace_backend_option(self):
        spec = ScenarioSpec().replace("backend.options.num_devices", 4)
        assert spec.backend.options["num_devices"] == 4

    def test_replace_unknown_path_rejected(self):
        with pytest.raises(ValueError, match="unknown spec path"):
            ScenarioSpec().replace("engine.concurrency", 1)
        with pytest.raises(ValueError, match="has no field"):
            ScenarioSpec().replace("serving.qps", 1)


class TestSessionParity:
    def test_run_matches_hand_wired_quickstart(self):
        """Session.run() reproduces the hand-wired five-step incantation."""
        # The hand-wired path, exactly as examples/quickstart.py used to do it.
        model = build_scaled_model(
            M1_SPEC, max_tables_per_group=4, max_rows_per_table=2048, item_batch=4
        )
        sdm = SoftwareDefinedMemory(
            model,
            SDMConfig(
                device_technology=Technology.NAND_FLASH,
                num_devices=2,
                row_cache_capacity_bytes=4 * MIB,
                pooled_cache_capacity_bytes=1 * MIB,
            ),
        )
        engine = InferenceEngine(model, ComputeSpec(), user_backend=sdm)
        queries = QueryGenerator(
            model, WorkloadConfig(item_batch=4, num_users=200), seed=0
        ).generate(100)
        hand_wired = ServingSimulator(engine, concurrency=2).run(queries, warmup_queries=20)

        session_result = Session(QUICKSTART_SPEC).run()
        via_session = session_result.host_result

        assert via_session.num_queries == hand_wired.num_queries
        assert via_session.latencies == hand_wired.latencies
        assert via_session.makespan_seconds == hand_wired.makespan_seconds
        for mine, theirs in zip(via_session.results, hand_wired.results):
            np.testing.assert_array_equal(mine.scores, theirs.scores)
            assert mine.latency == theirs.latency
            assert mine.bottom_mlp_time == theirs.bottom_mlp_time
            assert mine.user_embedding_time == theirs.user_embedding_time
            assert mine.item_embedding_time == theirs.item_embedding_time
            assert mine.top_mlp_time == theirs.top_mlp_time

        assert session_result.achieved_qps == hand_wired.achieved_qps
        assert session_result.latency == hand_wired.percentiles()

    def test_sdm_and_dram_backends_agree_on_scores(self):
        sdm_session = Session(QUICKSTART_SPEC)
        dram_session = Session(
            ScenarioSpec.from_dict({**QUICKSTART_SPEC.to_dict(), "backend": {"name": "dram"}})
        )
        for query, reference in zip(sdm_session.queries()[:3], dram_session.queries()[:3]):
            np.testing.assert_allclose(
                sdm_session.engine.run_query(query).scores,
                dram_session.engine.run_query(reference).scores,
                rtol=1e-4,
                atol=1e-5,
            )


@pytest.fixture
def small_spec():
    return ScenarioSpec(
        name="small",
        model=ModelChoice(max_tables_per_group=2, max_rows_per_table=512),
        backend=BackendChoice(
            name="sdm",
            options=dict(
                row_cache_capacity_bytes=256 * 1024,
                pooled_cache_capacity_bytes=128 * 1024,
            ),
        ),
        workload=WorkloadChoice(num_queries=40, num_users=100),
        serving=ServingChoice(concurrency=2, warmup_queries=10),
    )


class TestSession:
    def test_lazy_construction(self, small_spec):
        session = Session(small_spec)
        assert session._model is None and session._backend is None
        session.queries()  # workload needs the model but not the backend
        assert session._model is not None
        assert session._backend is None

    def test_run_reports_backend_stats_for_sdm(self, small_spec):
        result = Session(small_spec).run()
        assert result.backend_name == "sdm"
        assert result.num_queries == 30  # 40 queries minus 10 warmup
        assert 0.0 <= result.backend_stats["row cache hit rate"] <= 1.0
        assert set(result.latency) == {"mean", "p50", "p95", "p99"}
        assert result.to_dict()["backend_stats"]["SM IOs per query"] >= 0

    def test_dram_backend_has_no_backend_stats(self, small_spec):
        result = Session(
            ScenarioSpec.from_dict({**small_spec.to_dict(), "backend": {"name": "dram"}})
        ).run()
        assert result.backend_stats == {}

    def test_reset_stats_after_warmup_measures_steady_state(self, small_spec):
        spec = small_spec.replace("serving.reset_stats_after_warmup", True)
        result = Session(spec).run()
        assert result.num_queries == 30
        # The warmed cache keeps serving, only the counters were reset.
        assert result.backend_stats["row cache hit rate"] > 0.0

    def test_sweep_runs_each_value_in_a_fresh_session(self, small_spec):
        points = Session(small_spec).sweep("serving.concurrency", [1, 2])
        assert [point.value for point in points] == [1, 2]
        assert all(point.result.num_queries == 30 for point in points)
        # More streams never reduce simulated closed-loop throughput.
        assert points[1].result.achieved_qps >= points[0].result.achieved_qps

    def test_sweep_over_backend_options(self, small_spec):
        points = Session(small_spec).sweep(
            "backend.options.num_devices", [1, 2]
        )
        assert [len(point.result.host_result.latencies) for point in points] == [30, 30]

    def test_result_table_renders(self, small_spec):
        table = Session(small_spec).run().summary_table()
        assert "achieved QPS" in table and "small" in table

    def test_power_summary_analytic(self):
        spec = ScenarioSpec(
            name="table8",
            serving=ServingChoice(
                platform="HW-SS",
                qps_per_host=120,
                baseline_platform="HW-L",
                baseline_qps_per_host=240,
                fleet_qps=120 * 240,
            ),
        )
        power = Session(spec).power_summary()
        assert power.num_hosts == 240
        assert power.power_saving == pytest.approx(0.2)

    def test_power_summary_requires_qps_source(self):
        spec = ScenarioSpec(serving=ServingChoice(platform="HW-SS"))
        with pytest.raises(ValueError, match="qps_per_host"):
            Session(spec).power_summary()

    def test_unknown_platform_rejected(self):
        spec = ScenarioSpec(serving=ServingChoice(platform="HW-XX", qps_per_host=1.0))
        with pytest.raises(ValueError, match="unknown platform"):
            Session(spec).power_summary()


class TestCLI:
    def _run_json(self, capsys, argv):
        assert cli_main(argv) == 0
        return json.loads(capsys.readouterr().out)

    def test_list_backends(self, capsys):
        payload = self._run_json(capsys, ["list-backends", "--json"])
        assert {"dram", "sdm", "pooled"} <= set(payload)

    def test_run_scenario(self, capsys):
        payload = self._run_json(
            capsys,
            ["run", "--rows", "256", "--queries", "30", "--warmup", "5",
             "--users", "50", "--json"],
        )
        assert payload["backend"] == "sdm"
        assert payload["num_queries"] == 25
        assert payload["achieved_qps"] > 0

    def test_run_with_backend_options(self, capsys):
        payload = self._run_json(
            capsys,
            ["run", "--rows", "256", "--queries", "20", "--warmup", "0",
             "--backend", "sdm", "--option", "num_devices=1",
             "--option", "pooled_cache_enabled=false", "--json"],
        )
        assert payload["backend_stats"]["pooled cache hit rate"] == 0.0

    def test_sweep(self, capsys):
        payload = self._run_json(
            capsys,
            ["sweep", "--param", "serving.concurrency", "--values", "1,2",
             "--rows", "256", "--queries", "20", "--warmup", "0", "--json"],
        )
        assert [point["value"] for point in payload] == [1, 2]

    def test_spec_file_round_trip(self, capsys, tmp_path):
        spec_file = tmp_path / "scenario.json"
        spec = ScenarioSpec(
            name="from-file",
            model=ModelChoice(max_tables_per_group=2, max_rows_per_table=256),
            workload=WorkloadChoice(num_queries=20, num_users=50),
            serving=ServingChoice(concurrency=1, warmup_queries=0),
        )
        spec_file.write_text(json.dumps(spec.to_dict()))
        payload = self._run_json(capsys, ["run", "--spec", str(spec_file), "--json"])
        assert payload["scenario"] == "from-file"
        assert payload["num_queries"] == 20

    def test_python_dash_m_repro_entry_point(self):
        """Acceptance: `python -m repro run` executes an M1 SDM scenario."""
        env_src = str(REPO_ROOT / "src")
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "run", "--model", "M1", "--backend", "sdm",
             "--rows", "256", "--queries", "20", "--warmup", "0", "--json"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin:/usr/local/bin"},
        )
        assert completed.returncode == 0, completed.stderr
        payload = json.loads(completed.stdout)
        assert payload["backend"] == "sdm"
        assert payload["num_queries"] == 20

    def test_python_dash_m_repro_list_backends(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "list-backends"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"},
        )
        assert completed.returncode == 0, completed.stderr
        assert "sdm" in completed.stdout


class TestTrafficSpec:
    def test_defaults_are_closed_loop(self):
        assert TrafficSpec().mode == "closed"
        assert ScenarioSpec().traffic == TrafficSpec()

    def test_round_trip_with_traffic(self):
        spec = ScenarioSpec(
            name="open",
            traffic=TrafficSpec(mode="open", arrival="poisson", offered_qps=150.0),
        )
        assert ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_trace_round_trips_through_json(self):
        spec = ScenarioSpec(
            traffic=TrafficSpec(mode="open", arrival="trace", trace=(0.0, 0.5, 1.0))
        )
        rebuilt = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec
        assert rebuilt.traffic.trace == (0.0, 0.5, 1.0)

    def test_old_specs_without_traffic_section_still_load(self):
        data = ScenarioSpec().to_dict()
        del data["traffic"]
        assert ScenarioSpec.from_dict(data) == ScenarioSpec()

    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficSpec(mode="half-open")
        with pytest.raises(ValueError):
            TrafficSpec(arrival="warp-drive")
        with pytest.raises(ValueError):
            TrafficSpec(mode="open", arrival="poisson")  # no offered_qps
        with pytest.raises(ValueError):
            TrafficSpec(mode="open", arrival="constant", offered_qps=-5.0)
        with pytest.raises(ValueError):
            TrafficSpec(mode="open", arrival="trace")  # no trace
        with pytest.raises(ValueError):
            TrafficSpec(queue_depth=-1)
        with pytest.raises(ValueError):
            TrafficSpec(serve_batch=0)

    def test_serve_batch_round_trips_through_json(self):
        spec = ScenarioSpec(
            traffic=TrafficSpec(
                mode="open", arrival="poisson", offered_qps=100.0, serve_batch=8
            )
        )
        rebuilt = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec
        assert rebuilt.traffic.serve_batch == 8

    def test_replace_traffic_path(self):
        spec = ScenarioSpec().replace("traffic.offered_qps", 80.0)
        spec = spec.replace("traffic.mode", "open")
        assert spec.traffic.mode == "open"
        assert spec.traffic.offered_qps == 80.0


class TestOpenLoopSession:
    def _open_spec(self, offered_qps=500.0, **traffic_overrides):
        traffic = dict(mode="open", arrival="poisson", offered_qps=offered_qps, seed=3)
        traffic.update(traffic_overrides)
        return ScenarioSpec(
            name="open-small",
            model=ModelChoice(max_tables_per_group=2, max_rows_per_table=512),
            backend=BackendChoice(
                name="sdm",
                options=dict(
                    row_cache_capacity_bytes=256 * 1024,
                    pooled_cache_capacity_bytes=128 * 1024,
                ),
            ),
            workload=WorkloadChoice(num_queries=40, num_users=100),
            traffic=TrafficSpec(**traffic),
            serving=ServingChoice(concurrency=2, warmup_queries=10),
        )

    def test_run_reports_queueing_and_drops(self):
        result = Session(self._open_spec()).run()
        assert result.traffic_mode == "open"
        assert result.offered_qps is not None and result.offered_qps > 0
        assert result.queueing is not None
        assert set(result.queueing) == {"mean", "p50", "p95", "p99"}
        assert result.dropped_queries >= 0
        payload = result.to_dict()
        assert payload["traffic_mode"] == "open"
        assert payload["queueing_seconds"] == result.queueing
        assert "offered QPS" in result.summary_table()

    def test_closed_loop_result_has_no_queueing(self):
        spec = self._open_spec()
        closed = ScenarioSpec.from_dict(
            {**spec.to_dict(), "traffic": {"mode": "closed"}}
        )
        result = Session(closed).run()
        assert result.traffic_mode == "closed"
        assert result.queueing is None
        assert result.offered_qps is None

    def test_overload_shows_queueing_above_service_time(self):
        closed = Session(
            ScenarioSpec.from_dict(
                {**self._open_spec().to_dict(), "traffic": {"mode": "closed"}}
            )
        ).run()
        capacity = closed.achieved_qps
        hot = Session(self._open_spec(offered_qps=3.0 * capacity)).run()
        assert hot.latency["p99"] > closed.latency["p99"]
        assert hot.queueing["p99"] > 0.0

    def test_serve_batch_reaches_the_engine_and_the_result(self):
        result = Session(self._open_spec(serve_batch=4)).run()
        assert result.serve_batch == 4
        assert result.to_dict()["serve_batch"] == 4
        assert ["serve batch", 4] in result.summary_rows()

    def test_store_results_false_drops_raw_results(self):
        spec = self._open_spec()
        spec = spec.replace("serving.store_results", False)
        result = Session(spec).run()
        assert result.host_result.results == []
        assert result.num_queries == 30

    def test_sweep_of_open_loop_param_with_closed_traffic_is_an_error(self):
        closed = ScenarioSpec.from_dict(
            {**self._open_spec().to_dict(), "traffic": {"mode": "closed"}}
        )
        for param in ("traffic.offered_qps", "traffic.queue_depth", "traffic.arrival"):
            with pytest.raises(ValueError, match="closed-loop"):
                Session(closed).sweep(param, [1, 2])

    def test_sweep_over_offered_qps(self):
        # The small scenario sustains a few thousand QPS closed-loop; sweep a
        # point well below and a point well above that capacity.
        points = Session(self._open_spec()).sweep(
            "traffic.offered_qps", [500.0, 50_000.0]
        )
        assert [point.value for point in points] == [500.0, 50_000.0]
        # Above the saturation knee, queueing delay dominates the p99.
        assert points[1].result.queueing["p99"] > points[0].result.queueing["p99"]
        assert points[1].result.latency["p99"] > points[0].result.latency["p99"]


class TestOpenLoopCLI:
    def _run_json(self, capsys, argv):
        assert cli_main(argv) == 0
        return json.loads(capsys.readouterr().out)

    def test_run_open_loop_arguments(self, capsys):
        payload = self._run_json(
            capsys,
            ["run", "--rows", "256", "--queries", "30", "--warmup", "5",
             "--users", "50", "--arrival", "poisson", "--offered-qps", "200",
             "--queue-depth", "16", "--json"],
        )
        assert payload["traffic_mode"] == "open"
        assert payload["offered_qps"] > 0
        assert payload["queueing_seconds"] is not None

    def test_arrival_closed_keeps_closed_loop(self, capsys):
        payload = self._run_json(
            capsys,
            ["run", "--rows", "256", "--queries", "20", "--warmup", "0",
             "--arrival", "closed", "--json"],
        )
        assert payload["traffic_mode"] == "closed"

    def test_open_loop_without_offered_qps_is_a_user_error(self, capsys):
        assert cli_main(["run", "--rows", "256", "--queries", "10",
                         "--arrival", "poisson"]) == 2
        assert "offered_qps" in capsys.readouterr().err

    def test_offered_qps_alone_implies_open_loop(self, capsys):
        payload = self._run_json(
            capsys,
            ["run", "--rows", "256", "--queries", "20", "--warmup", "0",
             "--offered-qps", "150", "--json"],
        )
        assert payload["traffic_mode"] == "open"
        assert payload["queueing_seconds"] is not None

    def test_queue_depth_alone_without_rate_is_a_user_error(self, capsys):
        assert cli_main(["run", "--rows", "256", "--queries", "10",
                         "--queue-depth", "8"]) == 2
        assert "offered_qps" in capsys.readouterr().err

    def test_sweep_over_offered_qps_implies_open_loop(self, capsys):
        payload = self._run_json(
            capsys,
            ["sweep", "--param", "traffic.offered_qps", "--values", "100,1000",
             "--rows", "256", "--queries", "20", "--warmup", "0", "--json"],
        )
        assert [point["result"]["traffic_mode"] for point in payload] == ["open", "open"]
        qps = [point["result"]["achieved_qps"] for point in payload]
        assert qps[0] != qps[1]  # the offered load actually took effect

    def test_sweep_offered_qps_with_arrival_closed_is_a_user_error(self, capsys):
        assert cli_main(["sweep", "--param", "traffic.offered_qps",
                         "--values", "100,200", "--arrival", "closed",
                         "--rows", "256", "--queries", "10"]) == 2
        assert "open-loop" in capsys.readouterr().err
