"""ScenarioResult serialisation and the sweep/campaign table formatters."""

import pytest

from repro import ScenarioResult, Session, ScenarioSpec, campaign_table, sweep_table
from repro.api import ModelChoice, PowerSummary, ServingChoice, SweepPoint, WorkloadChoice
from repro.api.results import scenario_metrics


def make_result(**overrides):
    defaults = dict(
        scenario="s",
        backend_name="dram",
        num_queries=10,
        concurrency=1,
        makespan_seconds=0.5,
        achieved_qps=20.0,
        latency={"mean": 0.01, "p50": 0.01, "p95": 0.02, "p99": 0.03},
        meets_slo=True,
        slo_headroom=0.5,
    )
    defaults.update(overrides)
    return ScenarioResult(**defaults)


class FakeOutcome:
    def __init__(self, coords, result):
        self.coords = coords
        self.result = result


class TestScenarioResultFromDict:
    def test_round_trips_to_dict(self):
        result = make_result(
            backend_stats={"row cache hit rate": 0.9},
            power=PowerSummary(platform="HW-SS", host_power=1.0, num_hosts=3, fleet_power=3.0),
            traffic_mode="open",
            offered_qps=120.0,
            dropped_queries=2,
            queueing={"mean": 0.001, "p50": 0.001, "p95": 0.002, "p99": 0.003},
        )
        rebuilt = ScenarioResult.from_dict(result.to_dict())
        assert rebuilt.to_dict() == result.to_dict()
        assert rebuilt.host_result is None
        assert rebuilt.power.platform == "HW-SS"
        assert rebuilt.queueing == result.queueing

    def test_round_trips_from_a_real_run(self):
        spec = ScenarioSpec(
            model=ModelChoice(max_tables_per_group=2, max_rows_per_table=256),
            workload=WorkloadChoice(num_queries=12, num_users=40),
            serving=ServingChoice(concurrency=1, warmup_queries=0),
        )
        result = Session(spec).run()
        assert ScenarioResult.from_dict(result.to_dict()).to_dict() == result.to_dict()


class TestSweepTableValidation:
    def test_unknown_metric_raises_value_error_listing_fields(self):
        points = [SweepPoint(param="p", value=1, result=make_result())]
        with pytest.raises(ValueError) as excinfo:
            sweep_table(points, metric="achieved_qpz")
        message = str(excinfo.value)
        assert "achieved_qpz" in message
        assert "achieved_qps" in message  # the valid fields are listed
        assert "latency" in message

    def test_known_metric_still_formats(self):
        points = [SweepPoint(param="p", value=1, result=make_result())]
        assert "achieved_qps" in sweep_table(points, metric="achieved_qps")

    def test_empty_points_rejected(self):
        with pytest.raises(ValueError, match="at least one point"):
            sweep_table([])

    def test_scenario_metrics_lists_dataclass_fields(self):
        metrics = scenario_metrics()
        assert "achieved_qps" in metrics
        assert "latency" in metrics
        assert metrics == sorted(metrics)


class TestCampaignTable:
    def _outcomes(self):
        return [
            FakeOutcome(
                (("backend.name", "dram"), ("serving.concurrency", 1)),
                make_result(achieved_qps=100.0),
            ),
            FakeOutcome(
                (("backend.name", "sdm"), ("serving.concurrency", 2)),
                make_result(achieved_qps=50.0),
            ),
        ]

    def test_renders_axes_and_metric_columns(self):
        table = campaign_table(self._outcomes(), ["achieved_qps", "num_queries"])
        assert "backend.name" in table and "serving.concurrency" in table
        assert "achieved_qps" in table and "num_queries" in table
        assert "dram" in table and "sdm" in table

    def test_single_metric_string_accepted(self):
        assert "achieved_qps" in campaign_table(self._outcomes(), "achieved_qps")

    def test_shares_sweep_table_metric_validation(self):
        with pytest.raises(ValueError, match="valid ScenarioResult metrics"):
            campaign_table(self._outcomes(), "nope")

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError, match="at least one outcome"):
            campaign_table([], "achieved_qps")
        with pytest.raises(ValueError, match="at least one metric"):
            campaign_table(self._outcomes(), [])
