"""Tests for latency targets and percentile helpers."""

import pytest

from repro.serving import LatencyTarget, latency_percentiles
from repro.sim.units import MILLISECOND


class TestLatencyTarget:
    def test_met_by_fast_samples(self):
        target = LatencyTarget(percentile=95, budget_seconds=10 * MILLISECOND)
        assert target.met_by([1e-3] * 100)

    def test_violated_by_slow_tail(self):
        target = LatencyTarget(percentile=99, budget_seconds=5 * MILLISECOND)
        latencies = [1e-3] * 95 + [50e-3] * 5
        assert not target.met_by(latencies)

    def test_p95_target_tolerates_small_tail(self):
        """The M1 use case targets p95, so occasional Nand Flash tail latency
        does not violate the SLO (section 5.1)."""
        target = LatencyTarget(percentile=95, budget_seconds=5 * MILLISECOND)
        latencies = [1e-3] * 97 + [100e-3] * 3
        assert target.met_by(latencies)
        assert not LatencyTarget(99, 5 * MILLISECOND).met_by(latencies)

    def test_headroom_sign(self):
        target = LatencyTarget(95, 10 * MILLISECOND)
        assert target.headroom([1e-3] * 10) > 0
        assert target.headroom([20e-3] * 10) < 0

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyTarget(percentile=0)
        with pytest.raises(ValueError):
            LatencyTarget(budget_seconds=0)


class TestLatencyPercentiles:
    def test_reports_expected_keys(self):
        stats = latency_percentiles([1.0, 2.0, 3.0])
        assert set(stats) == {"mean", "p50", "p95", "p99"}
        assert stats["p50"] <= stats["p95"] <= stats["p99"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            latency_percentiles([])
