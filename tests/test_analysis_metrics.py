"""Tests for metric primitives."""

import math

import pytest

from repro.analysis import Histogram, MetricRegistry, RunningStat, percentile


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_p100_is_max(self):
        assert percentile([1, 9, 5], 100) == 9

    def test_p0_is_min(self):
        assert percentile([1, 9, 5], 0) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_percentile_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 150)


class TestRunningStat:
    def test_mean_and_count(self):
        stat = RunningStat()
        for value in (1.0, 2.0, 3.0):
            stat.add(value)
        assert stat.count == 3
        assert stat.mean == pytest.approx(2.0)

    def test_min_max(self):
        stat = RunningStat()
        for value in (5.0, -1.0, 3.0):
            stat.add(value)
        assert stat.minimum == -1.0
        assert stat.maximum == 5.0

    def test_variance_matches_sample_variance(self):
        stat = RunningStat()
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        for value in values:
            stat.add(value)
        mean = sum(values) / len(values)
        expected = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert stat.variance == pytest.approx(expected)
        assert stat.stddev == pytest.approx(math.sqrt(expected))

    def test_variance_of_single_sample_is_zero(self):
        stat = RunningStat()
        stat.add(3.0)
        assert stat.variance == 0.0

    def test_merge_equivalent_to_combined_stream(self):
        left, right, combined = RunningStat(), RunningStat(), RunningStat()
        for value in (1.0, 2.0, 3.0):
            left.add(value)
            combined.add(value)
        for value in (10.0, 20.0):
            right.add(value)
            combined.add(value)
        left.merge(right)
        assert left.count == combined.count
        assert left.mean == pytest.approx(combined.mean)
        assert left.variance == pytest.approx(combined.variance)

    def test_merge_with_empty(self):
        left = RunningStat()
        left.add(1.0)
        left.merge(RunningStat())
        assert left.count == 1


class TestHistogram:
    def test_summary_fields(self):
        hist = Histogram("latency")
        hist.extend([1.0, 2.0, 3.0, 4.0])
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["max"] == 4.0

    def test_percentile_accessors(self):
        hist = Histogram()
        hist.extend(range(1, 101))
        assert hist.p50 == pytest.approx(50.5)
        assert hist.p95 >= hist.p50
        assert hist.p99 >= hist.p95

    def test_empty_histogram_mean_rejected(self):
        with pytest.raises(ValueError):
            Histogram().mean

    def test_len(self):
        hist = Histogram()
        hist.add(1.0)
        assert len(hist) == 1


class TestMetricRegistry:
    def test_counters(self):
        registry = MetricRegistry()
        registry.incr("hits")
        registry.incr("hits", 2)
        assert registry.counter("hits") == 3
        assert registry.counter("missing") == 0

    def test_gauges(self):
        registry = MetricRegistry()
        registry.set_gauge("occupancy", 0.5)
        assert registry.gauge("occupancy") == 0.5
        assert registry.gauge("missing", default=1.0) == 1.0
        with pytest.raises(KeyError):
            registry.gauge("missing")

    def test_histograms(self):
        registry = MetricRegistry()
        registry.observe("latency", 1.0)
        registry.observe("latency", 3.0)
        assert registry.histogram("latency").count == 2
        with pytest.raises(KeyError):
            registry.histogram("nope")

    def test_ratio(self):
        registry = MetricRegistry()
        registry.incr("hits", 3)
        registry.incr("lookups", 4)
        assert registry.ratio("hits", "lookups") == pytest.approx(0.75)
        assert registry.ratio("hits", "nothing") == 0.0

    def test_reset(self):
        registry = MetricRegistry()
        registry.incr("hits")
        registry.set_gauge("g", 1.0)
        registry.observe("h", 1.0)
        registry.reset()
        assert registry.counter("hits") == 0
        assert registry.gauges == {}
        assert registry.histograms == {}
