"""Tests for the Zipf index generator."""

import numpy as np
import pytest

from repro.workload import ZipfGenerator


class TestZipfGenerator:
    def test_samples_within_range(self):
        generator = ZipfGenerator(num_items=100, alpha=1.1, seed=0)
        samples = generator.sample(1000)
        assert samples.min() >= 0
        assert samples.max() < 100

    def test_reproducible(self):
        a = ZipfGenerator(100, 1.1, seed=3).sample(50)
        b = ZipfGenerator(100, 1.1, seed=3).sample(50)
        np.testing.assert_array_equal(a, b)

    def test_skew_concentrates_accesses(self):
        generator = ZipfGenerator(1000, alpha=1.2, seed=0)
        samples = generator.sample(20_000)
        _, counts = np.unique(samples, return_counts=True)
        counts = np.sort(counts)[::-1]
        top_10pct = counts[: max(len(counts) // 10, 1)].sum() / counts.sum()
        assert top_10pct > 0.5

    def test_higher_alpha_is_more_skewed(self):
        low = ZipfGenerator(1000, alpha=0.6, seed=0)
        high = ZipfGenerator(1000, alpha=1.4, seed=0)
        assert high.expected_top_fraction_coverage(0.1) > low.expected_top_fraction_coverage(0.1)

    def test_unique_sampling_has_no_duplicates(self):
        generator = ZipfGenerator(200, 1.05, seed=0)
        samples = generator.sample(50, unique=True)
        assert len(set(samples.tolist())) == 50

    def test_unique_sampling_more_than_population_rejected(self):
        with pytest.raises(ValueError):
            ZipfGenerator(10, 1.0).sample(11, unique=True)

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            ZipfGenerator(10, 1.0).sample(0)

    def test_invalid_constructor_args_rejected(self):
        with pytest.raises(ValueError):
            ZipfGenerator(0, 1.0)
        with pytest.raises(ValueError):
            ZipfGenerator(10, 0.0)

    def test_expected_coverage_bounds(self):
        generator = ZipfGenerator(100, 1.0)
        assert generator.expected_top_fraction_coverage(1.0) == pytest.approx(1.0)
        assert 0 < generator.expected_top_fraction_coverage(0.01) < 1.0
        with pytest.raises(ValueError):
            generator.expected_top_fraction_coverage(0.0)

    def test_shuffled_ids_scatter_popular_rows(self):
        """With id shuffling the hottest rows are not the low ids (this is
        what destroys spatial locality in Figure 5)."""
        generator = ZipfGenerator(10_000, 1.2, seed=0, shuffle_ids=True)
        samples = generator.sample(5000)
        values, counts = np.unique(samples, return_counts=True)
        hottest = values[np.argmax(counts)]
        assert hottest > 100  # overwhelmingly likely with shuffling

    def test_unshuffled_ids_put_hottest_first(self):
        generator = ZipfGenerator(10_000, 1.2, seed=0, shuffle_ids=False)
        samples = generator.sample(5000)
        values, counts = np.unique(samples, return_counts=True)
        assert values[np.argmax(counts)] < 10

    def test_popularity_rank(self):
        generator = ZipfGenerator(100, 1.0, seed=0, shuffle_ids=False)
        assert generator.popularity_rank_of(0) == 0
        with pytest.raises(ValueError):
            generator.popularity_rank_of(1000)
