"""Tests for hardware platform configurations (Table 7)."""

import pytest

from repro.serving import HW_AN, HW_AO, HW_FA, HW_FAO, HW_L, HW_S, HW_SS
from repro.serving.platform import ALL_PLATFORMS, AcceleratorSpec, HostPlatform
from repro.sim.units import GB, TB
from repro.storage import Technology


class TestTable7Platforms:
    def test_all_platforms_registered(self):
        assert set(ALL_PLATFORMS) == {
            "HW-L",
            "HW-S",
            "HW-SS",
            "HW-AN",
            "HW-AO",
            "HW-FA",
            "HW-FAO",
        }

    def test_hw_l_is_dual_socket_256gb_no_ssd(self):
        assert HW_L.cpu_sockets == 2
        assert HW_L.dram_bytes == 256 * GB
        assert not HW_L.has_ssd
        assert not HW_L.has_accelerator

    def test_hw_ss_has_two_2tb_nand_flash(self):
        assert HW_SS.dram_bytes == 64 * GB
        assert len(HW_SS.ssds) == 2
        assert all(ssd.technology is Technology.NAND_FLASH for ssd in HW_SS.ssds)
        assert HW_SS.total_sm_capacity_bytes == 4 * TB

    def test_hw_an_and_ao_have_accelerators(self):
        assert HW_AN.has_accelerator and HW_AO.has_accelerator
        assert all(s.technology is Technology.NAND_FLASH for s in HW_AN.ssds)
        assert all(s.technology is Technology.OPTANE_SSD for s in HW_AO.ssds)
        assert HW_AO.total_sm_capacity_bytes == pytest.approx(800 * GB)

    def test_hw_fao_has_nine_optane_ssds(self):
        assert len(HW_FAO.ssds) == 9
        assert HW_FAO.total_sm_iops == pytest.approx(9 * 4e6)

    def test_relative_power_values_match_paper_tables(self):
        assert HW_L.relative_power == 1.0
        assert HW_SS.relative_power == pytest.approx(0.4)  # Table 8
        assert HW_S.relative_power == pytest.approx(0.25)  # Table 9 helper hosts
        assert HW_AN.relative_power == HW_AO.relative_power == 1.0

    def test_hw_fao_power_close_to_hw_fa(self):
        """Table 11: the SDM platform draws ~1% more power than the baseline."""
        ratio = HW_FAO.power_with_ssds / HW_FA.power_with_ssds
        assert 1.0 < ratio < 1.03

    def test_accelerator_provides_compute_and_bandwidth(self):
        assert HW_AN.compute_flops == HW_AN.accelerator.flops_per_second
        assert HW_AN.fast_memory_bandwidth == HW_AN.accelerator.memory_bandwidth
        assert HW_L.compute_flops == HW_L.cpu_flops_per_second

    def test_hw_l_has_twice_the_compute_of_hw_ss(self):
        assert HW_L.cpu_flops_per_second == pytest.approx(2 * HW_SS.cpu_flops_per_second)

    def test_with_ssds_returns_copy(self):
        modified = HW_L.with_ssds(HW_SS.ssds)
        assert modified.has_ssd
        assert not HW_L.has_ssd


class TestValidation:
    def test_invalid_platform_rejected(self):
        with pytest.raises(ValueError):
            HostPlatform(
                name="bad",
                cpu_sockets=0,
                dram_bytes=GB,
                cpu_flops_per_second=1e12,
                dram_bandwidth=1e9,
            )
        with pytest.raises(ValueError):
            HostPlatform(
                name="bad",
                cpu_sockets=1,
                dram_bytes=GB,
                cpu_flops_per_second=1e12,
                dram_bandwidth=1e9,
                relative_power=0,
            )

    def test_invalid_accelerator_rejected(self):
        with pytest.raises(ValueError):
            AcceleratorSpec(name="bad", memory_bytes=0, flops_per_second=1, memory_bandwidth=1)
