"""Tests for the event-driven serving engine (open loop + closed-loop parity)."""

import math

import numpy as np
import pytest

from repro.serving import LatencyTarget, OpenLoopResult, ServingEngine, ServingSimulator
from repro.serving import capacity_plan_from_host_result
from repro.serving.platform import HW_S, HW_SS
from repro.serving.scaleout import plan_scale_out_from_result
from repro.workload.generator import generate_arrival_times

from helpers import small_engine, small_model, small_queries, small_sdm


def _fresh(num_queries=30, concurrency=1, store_results=True):
    """A deterministic engine + query stream (fresh caches every call)."""
    model = small_model()
    sdm = small_sdm(model)
    engine = small_engine(model, sdm)
    serving = ServingEngine(engine, concurrency=concurrency, store_results=store_results)
    return serving, small_queries(model, num_queries)


def _seed_reference_run(engine, queries, concurrency, warmup_queries=0):
    """The seed ``ServingSimulator`` algorithm, replicated verbatim.

    Round-robin stream assignment, position-order execution, per-stream
    clocks — the closed-loop compatibility mode must reproduce this exactly.
    """
    for query in queries[:warmup_queries]:
        engine.run_query(query, start_time=0.0)
    measured = queries[warmup_queries:]
    stream_clock = [0.0] * concurrency
    latencies, scores = [], []
    for position, query in enumerate(measured):
        stream = position % concurrency
        result = engine.run_query(query, start_time=stream_clock[stream])
        stream_clock[stream] += result.latency
        latencies.append(result.latency)
        scores.append(result.scores)
    return latencies, scores, max(stream_clock)


class TestClosedLoopParity:
    @pytest.mark.parametrize("concurrency,warmup", [(1, 0), (2, 5), (4, 0)])
    def test_identical_latencies_scores_and_makespan(self, concurrency, warmup):
        model = small_model()
        reference_engine = small_engine(model, small_sdm(model))
        queries = small_queries(model, 24)
        ref_latencies, ref_scores, ref_makespan = _seed_reference_run(
            reference_engine, queries, concurrency, warmup_queries=warmup
        )

        model2 = small_model()
        engine2 = small_engine(model2, small_sdm(model2))
        result = ServingSimulator(engine2, concurrency=concurrency).run(
            small_queries(model2, 24), warmup_queries=warmup
        )

        assert result.latencies == ref_latencies
        assert result.makespan_seconds == ref_makespan
        for produced, expected in zip(result.results, ref_scores):
            np.testing.assert_array_equal(produced.scores, expected)

    def test_serving_simulator_exposes_engine_and_concurrency(self):
        serving, _ = _fresh()
        simulator = ServingSimulator(serving.engine, concurrency=3)
        assert simulator.concurrency == 3
        assert simulator.engine is serving.engine


class TestOpenLoop:
    def test_queueing_delay_is_real_above_capacity(self):
        """Offered load above capacity must show queueing in the p99."""
        closed_serving, queries = _fresh(60)
        closed = closed_serving.run_closed_loop(queries, warmup_queries=10)
        capacity = closed.num_queries / closed.makespan_seconds

        open_serving, queries2 = _fresh(60)
        arrivals = generate_arrival_times(
            50, process="poisson", offered_qps=3.0 * capacity, seed=7
        )
        result = open_serving.run_open_loop(
            queries2, arrivals, queue_depth=1000, warmup_queries=10
        )
        assert result.dropped_queries == 0
        # End-to-end p99 includes queueing delay, so it strictly exceeds the
        # closed-loop service-time p99.
        assert result.percentile_latency(99) > closed.percentile_latency(99)
        assert result.queueing_percentiles()["p99"] > 0.0

    def test_low_offered_load_sees_no_queueing(self):
        closed_serving, queries = _fresh(40)
        closed = closed_serving.run_closed_loop(queries, warmup_queries=10)
        capacity = closed.num_queries / closed.makespan_seconds

        open_serving, queries2 = _fresh(40)
        arrivals = generate_arrival_times(
            30, process="constant", offered_qps=0.2 * capacity
        )
        result = open_serving.run_open_loop(queries2, arrivals, warmup_queries=10)
        assert result.dropped_queries == 0
        assert result.mean_queue_delay == pytest.approx(0.0, abs=1e-12)
        # Latency == service time when nothing queues.
        assert result.latencies == pytest.approx(result.service_times)

    def test_zero_queue_depth_sheds_excess_load(self):
        serving, queries = _fresh(40, concurrency=1)
        # Everything arrives at t=0: one query is served immediately, the
        # rest find no waiting room and are shed.
        arrivals = [0.0] * 40
        result = serving.run_open_loop(queries, arrivals, queue_depth=0)
        assert result.offered_queries == 40
        assert result.dropped_queries > 0
        assert result.num_queries + result.dropped_queries == result.offered_queries
        assert result.drop_rate == pytest.approx(result.dropped_queries / 40)

    def test_bounded_queue_limits_waiting_room(self):
        serving, queries = _fresh(20, concurrency=1)
        result = serving.run_open_loop(queries, [0.0] * 20, queue_depth=5)
        # 1 in service + 5 queued; the other 14 shed.
        assert result.num_queries == 6
        assert result.dropped_queries == 14

    def test_records_split_latency_into_queueing_plus_service(self):
        serving, queries = _fresh(30)
        arrivals = generate_arrival_times(30, process="poisson", offered_qps=500.0, seed=3)
        result = serving.run_open_loop(queries, arrivals, queue_depth=64)
        assert len(result.records) == result.num_queries
        for record in result.records:
            assert record.latency == pytest.approx(
                record.queue_delay + record.service_time
            )
            assert record.queue_delay >= 0.0
            assert record.service_time > 0.0

    def test_makespan_and_offered_qps(self):
        serving, queries = _fresh(20)
        arrivals = generate_arrival_times(20, process="constant", offered_qps=100.0)
        result = serving.run_open_loop(queries, arrivals)
        assert result.offered_qps == pytest.approx(100.0)
        assert result.makespan_seconds >= arrivals[-1]
        assert result.achieved_qps == pytest.approx(
            result.num_queries / result.makespan_seconds
        )

    def test_trace_arrivals(self):
        serving, queries = _fresh(5)
        result = serving.run_open_loop(queries, [0.0, 0.01, 0.02, 0.5, 0.6])
        assert result.num_queries == 5

    def test_invalid_arguments_rejected(self):
        serving, queries = _fresh(10)
        with pytest.raises(ValueError):
            ServingEngine(serving.engine, concurrency=0)
        with pytest.raises(ValueError):
            serving.run_open_loop([], [])
        with pytest.raises(ValueError):
            serving.run_open_loop(queries, [0.0] * 3)  # length mismatch
        with pytest.raises(ValueError):
            serving.run_open_loop(queries, [0.0] * 9 + [-1.0])
        with pytest.raises(ValueError):
            serving.run_open_loop(queries, list(reversed(range(10))))
        with pytest.raises(ValueError):
            serving.run_open_loop(queries, [0.0] * 10, queue_depth=-1)
        with pytest.raises(ValueError):
            serving.run_open_loop(queries, [0.0] * 10, serve_batch=0)


class TestServeBatch:
    def test_serve_batch_one_is_the_classic_path(self):
        a, queries_a = _fresh(30)
        b, queries_b = _fresh(30)
        arrivals = generate_arrival_times(30, process="poisson", offered_qps=400.0, seed=2)
        classic = a.run_open_loop(queries_a, arrivals, queue_depth=16)
        explicit = b.run_open_loop(queries_b, arrivals, queue_depth=16, serve_batch=1)
        assert explicit.latencies == classic.latencies
        assert explicit.makespan_seconds == classic.makespan_seconds
        assert explicit.dropped_queries == classic.dropped_queries

    def test_freed_stream_drains_a_whole_batch(self):
        serving, queries = _fresh(9, concurrency=1)
        # All arrive at t=0 on one stream: the first query is served alone,
        # then each completion drains up to serve_batch=4 waiting queries
        # dispatched at the same simulated instant.
        result = serving.run_open_loop(queries, [0.0] * 9, serve_batch=4)
        assert result.num_queries == 9
        starts = sorted({record.start_time for record in result.records})
        batch_sizes = [
            sum(1 for record in result.records if record.start_time == start)
            for start in starts
        ]
        assert batch_sizes == [1, 4, 4]

    def test_batched_dispatch_blocks_stream_until_last_completion(self):
        serving, queries = _fresh(5, concurrency=1)
        result = serving.run_open_loop(queries, [0.0] * 5, serve_batch=4)
        batch_records = [r for r in result.records if r.start_time > 0.0]
        # The follow-up batch starts exactly when the first query completes.
        first = [r for r in result.records if r.start_time == 0.0]
        assert {r.start_time for r in batch_records} == {first[0].completion_time}


class TestStoreResults:
    def test_closed_loop_skips_query_results(self):
        serving, queries = _fresh(15, store_results=False)
        result = serving.run_closed_loop(queries)
        assert result.results == []
        assert len(result.latencies) == 15

    def test_open_loop_skips_results_and_records(self):
        serving, queries = _fresh(15, store_results=False)
        arrivals = generate_arrival_times(15, process="constant", offered_qps=50.0)
        result = serving.run_open_loop(queries, arrivals)
        assert result.results == []
        assert result.records == []
        assert len(result.latencies) == 15
        assert len(result.queue_delays) == 15

    def test_default_retains_results(self):
        serving, queries = _fresh(8)
        result = serving.run_closed_loop(queries)
        assert len(result.results) == 8


class TestOpenLoopResultMetrics:
    def _result(self, latencies, queue_delays, makespan=10.0, concurrency=1):
        service = [lat - q for lat, q in zip(latencies, queue_delays)]
        return OpenLoopResult(
            num_queries=len(latencies),
            concurrency=concurrency,
            makespan_seconds=makespan,
            latencies=list(latencies),
            offered_queries=len(latencies),
            queue_delays=list(queue_delays),
            service_times=service,
        )

    def test_qps_at_latency_estimates_capacity_when_slo_met(self):
        # 10 queries over 10 s (1 QPS offered) with 10 ms service times: the
        # host is underloaded, and its capacity is 1 stream / 10 ms = 100 QPS,
        # not the 1 QPS it happened to be offered.
        result = self._result([0.01] * 10, [0.0] * 10)
        target = LatencyTarget(95, 0.02)
        assert result.qps_at_latency(target) == pytest.approx(100.0)

    def test_qps_at_latency_never_below_demonstrated_throughput(self):
        # A host that measurably served this throughput within budget must
        # never be credited with less, whatever the service-based estimate.
        result = self._result([0.01] * 20, [0.005] * 20, makespan=10.0)
        target = LatencyTarget(95, 0.02)
        assert result.qps_at_latency(target) >= result.achieved_qps

    def test_qps_at_latency_sheds_when_slo_violated(self):
        result = self._result([0.08] * 10, [0.06] * 10)
        target = LatencyTarget(95, 0.02)
        expected = result.achieved_qps * (0.02 / 0.08)
        assert result.qps_at_latency(target) == pytest.approx(expected)

    def test_percentile_helpers(self):
        result = self._result([0.02, 0.04], [0.01, 0.03])
        assert result.queueing_percentiles()["p50"] == pytest.approx(0.02)
        assert result.service_percentiles()["mean"] == pytest.approx(0.01)
        assert result.mean_queue_delay == pytest.approx(0.02)

    def test_drop_rate_of_empty_offered_stream_is_zero(self):
        result = OpenLoopResult(
            num_queries=0, concurrency=1, makespan_seconds=0.0, latencies=[]
        )
        assert result.drop_rate == 0.0


class TestCapacityFromMeasurement:
    def test_fleet_plan_consumes_open_loop_result(self):
        serving, queries = _fresh(40)
        arrivals = generate_arrival_times(30, process="poisson", offered_qps=400.0, seed=1)
        result = serving.run_open_loop(queries, arrivals, warmup_queries=10)
        target = LatencyTarget(95, result.percentile_latency(95) * 2)
        sustainable = result.qps_at_latency(target)
        fleet_qps = 10 * sustainable
        plan = capacity_plan_from_host_result(
            "measured", HW_SS, result, target, fleet_qps=fleet_qps
        )
        assert plan.num_hosts == math.ceil(fleet_qps / sustainable)
        assert plan.scenario.qps_per_host == pytest.approx(sustainable)

    def test_underloaded_measurement_does_not_inflate_the_fleet(self):
        # A host offered far below its capacity must not be sized as if the
        # offered load were its capacity (that would over-provision wildly).
        serving, queries = _fresh(30)
        closed_serving, queries2 = _fresh(30)
        capacity = closed_serving.run_closed_loop(queries2, warmup_queries=10).achieved_qps
        arrivals = generate_arrival_times(
            20, process="constant", offered_qps=capacity / 50.0
        )
        result = serving.run_open_loop(queries, arrivals, warmup_queries=10)
        target = LatencyTarget(95, result.percentile_latency(95) * 2)
        # The sustainable estimate reflects service capacity, not offered load.
        assert result.qps_at_latency(target) > 5 * result.achieved_qps

    def test_saturated_host_needs_more_hosts(self):
        serving, queries = _fresh(40)
        arrivals = generate_arrival_times(30, process="poisson", offered_qps=400.0, seed=1)
        result = serving.run_open_loop(queries, arrivals, warmup_queries=10)
        healthy = LatencyTarget(95, result.percentile_latency(95) * 2)
        violated = LatencyTarget(95, result.percentile_latency(95) / 4)
        fleet_qps = 100 * result.achieved_qps
        relaxed = capacity_plan_from_host_result("ok", HW_SS, result, healthy, fleet_qps)
        strained = capacity_plan_from_host_result("hot", HW_SS, result, violated, fleet_qps)
        assert strained.num_hosts > relaxed.num_hosts

    def test_scale_out_plan_consumes_open_loop_result(self):
        serving, queries = _fresh(30)
        arrivals = generate_arrival_times(30, process="constant", offered_qps=200.0)
        result = serving.run_open_loop(queries, arrivals)
        target = LatencyTarget(95, result.percentile_latency(95) * 2)
        fleet_qps = 20 * result.qps_at_latency(target)
        plan = plan_scale_out_from_result(HW_SS, HW_S, result, target, fleet_qps=fleet_qps)
        assert plan.num_main_hosts == math.ceil(fleet_qps / result.qps_at_latency(target))
        assert plan.num_helper_hosts >= 1
        with pytest.raises(ValueError):
            plan_scale_out_from_result(HW_SS, HW_S, result, target, fleet_qps=0.0)
