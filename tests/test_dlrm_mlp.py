"""Tests for the MLP building block."""

import numpy as np
import pytest

from repro.dlrm import MLP


class TestMLP:
    def test_output_shape_single_sample(self):
        mlp = MLP([8, 16, 4])
        out = mlp.forward(np.zeros(8, dtype=np.float32))
        assert out.shape == (4,)

    def test_output_shape_batch(self):
        mlp = MLP([8, 16, 4])
        out = mlp.forward(np.zeros((5, 8), dtype=np.float32))
        assert out.shape == (5, 4)

    def test_deterministic_given_seed(self):
        x = np.linspace(-1, 1, 8).astype(np.float32)
        a = MLP([8, 16, 2], seed=3).forward(x)
        b = MLP([8, 16, 2], seed=3).forward(x)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        x = np.ones(8, dtype=np.float32)
        a = MLP([8, 16, 2], seed=1).forward(x)
        b = MLP([8, 16, 2], seed=2).forward(x)
        assert not np.array_equal(a, b)

    def test_hidden_relu_final_linear(self):
        """Hidden activations are clamped at zero but the output layer is
        linear, so outputs can be negative."""
        mlp = MLP([4, 8, 1], seed=0)
        outputs = [
            float(mlp.forward(np.random.default_rng(i).normal(size=4))[0]) for i in range(64)
        ]
        assert any(value < 0 for value in outputs)

    def test_zero_input_gives_zero_output_with_zero_biases(self):
        mlp = MLP([4, 8, 2], seed=0)
        np.testing.assert_allclose(mlp.forward(np.zeros(4)), np.zeros(2), atol=1e-7)

    def test_flops_per_sample(self):
        mlp = MLP([8, 16, 4])
        assert mlp.flops_per_sample() == 2 * (8 * 16 + 16 * 4)

    def test_num_parameters(self):
        mlp = MLP([8, 16, 4])
        assert mlp.num_parameters() == (8 * 16 + 16) + (16 * 4 + 4)

    def test_wrong_input_dim_rejected(self):
        with pytest.raises(ValueError):
            MLP([8, 4]).forward(np.zeros(5))

    def test_too_few_layers_rejected(self):
        with pytest.raises(ValueError):
            MLP([8])

    def test_non_positive_layer_rejected(self):
        with pytest.raises(ValueError):
            MLP([8, 0, 4])

    def test_properties(self):
        mlp = MLP([8, 16, 4], name="x")
        assert mlp.input_dim == 8
        assert mlp.output_dim == 4
        assert mlp.num_layers == 2
        assert "x" in repr(mlp)
