"""End-to-end integration tests across the whole stack.

These exercise the full pipeline the paper deploys: a DLRM served through the
SDM backend on simulated SSDs, driven by a synthetic query stream, measured
by the host-level serving simulator, and compared against DRAM-only serving.
"""

import numpy as np

from repro.core import SDMConfig, SoftwareDefinedMemory
from repro.dlrm import (
    ComputeSpec,
    InMemoryBackend,
    InferenceEngine,
    M1_SPEC,
    build_scaled_model,
)
from repro.serving import ServingSimulator
from repro.sim.units import MIB
from repro.storage import IOEngineConfig, Technology
from repro.workload import QueryGenerator, WorkloadConfig

from helpers import small_model, small_queries, small_sdm


def _m1_scaled(item_batch=4, seed=0):
    return build_scaled_model(
        M1_SPEC,
        max_tables_per_group=4,
        max_rows_per_table=512,
        item_batch=item_batch,
        seed=seed,
    )


class TestSDMvsDRAMServing:
    def test_scores_identical_between_sdm_and_dram(self):
        """The ranking scores must not depend on where embeddings live."""
        model = _m1_scaled()
        compute = ComputeSpec()
        queries = QueryGenerator(model, WorkloadConfig(item_batch=4, num_users=100), seed=1).generate(10)

        dram_engine = InferenceEngine(
            model, compute, InMemoryBackend(model.tables, compute)
        )
        sdm = SoftwareDefinedMemory(
            model, SDMConfig(row_cache_capacity_bytes=1 * MIB, pooled_cache_capacity_bytes=1 * MIB)
        )
        sdm_engine = InferenceEngine(model, compute, sdm)

        for query in queries:
            dram_scores = dram_engine.run_query(query).scores
            sdm_scores = sdm_engine.run_query(query).scores
            np.testing.assert_allclose(sdm_scores, dram_scores, rtol=1e-4, atol=1e-5)

    def test_sm_latency_hidden_when_item_side_dominates(self):
        """Equation 3: with a large item batch the user-side SM fetch is not
        on the critical path, so SDM latency approaches DRAM latency."""
        model = _m1_scaled(item_batch=16)
        compute = ComputeSpec()
        queries = QueryGenerator(
            model, WorkloadConfig(item_batch=16, num_users=50), seed=2
        ).generate(100)

        dram_engine = InferenceEngine(model, compute, InMemoryBackend(model.tables, compute))
        sdm = SoftwareDefinedMemory(
            model,
            SDMConfig(
                device_technology=Technology.OPTANE_SSD,
                row_cache_capacity_bytes=2 * MIB,
            ),
        )
        sdm_engine = InferenceEngine(model, compute, sdm)

        dram_latency = np.mean([dram_engine.run_query(q).latency for q in queries[60:]])
        # Warm the SDM caches to steady state: with 50 users at 0.8 reuse the
        # row cache needs most users' sequences seen before hit rates settle.
        for query in queries[:60]:
            sdm_engine.run_query(query)
        sdm_latency = np.mean([sdm_engine.run_query(q).latency for q in queries[60:]])
        assert sdm_latency <= dram_latency * 1.5

    def test_hit_rate_reaches_steady_state_with_repeated_users(self):
        """Section 5.1 reports >96% steady-state hit rate; the scaled setup
        must at least show a high hit rate once warmed."""
        model = small_model(num_rows=512)
        sdm = small_sdm(model, row_cache_capacity_bytes=4 * MIB, pooled_cache_enabled=False)
        generator = QueryGenerator(
            model,
            WorkloadConfig(item_batch=2, num_users=30, user_reuse_probability=0.9),
            seed=0,
        )
        queries = generator.generate(300)
        for query in queries:
            sdm.pooled_embeddings(query.user_indices, 0.0)
        assert sdm.row_cache_hit_rate > 0.8


class TestServingSimulatorIntegration:
    def test_optane_sustains_higher_qps_than_nand(self):
        """The Figure-3 / section-5.2 differentiation must show up end to end:
        the same model served on Optane achieves no worse throughput than on
        Nand Flash."""

        def run(technology):
            model = _m1_scaled(item_batch=2, seed=3)
            sdm = SoftwareDefinedMemory(
                model,
                SDMConfig(
                    device_technology=technology,
                    row_cache_capacity_bytes=256 * 1024,
                    pooled_cache_enabled=False,
                    io=IOEngineConfig(max_outstanding_per_device=16),
                ),
            )
            engine = InferenceEngine(model, ComputeSpec(), sdm)
            queries = QueryGenerator(
                model, WorkloadConfig(item_batch=2, num_users=500, user_reuse_probability=0.2), seed=4
            ).generate(60)
            result = ServingSimulator(engine).run(queries, warmup_queries=10)
            return result.achieved_qps

        assert run(Technology.OPTANE_SSD) >= run(Technology.NAND_FLASH)

    def test_full_pipeline_reports_consistent_metrics(self):
        model = _m1_scaled(item_batch=2)
        sdm = SoftwareDefinedMemory(model, SDMConfig(row_cache_capacity_bytes=1 * MIB))
        engine = InferenceEngine(model, ComputeSpec(), sdm)
        queries = QueryGenerator(model, WorkloadConfig(item_batch=2), seed=0).generate(40)
        result = ServingSimulator(engine, concurrency=2).run(queries, warmup_queries=5)

        assert result.num_queries == 35
        assert result.achieved_qps > 0
        assert sdm.stats.queries == 40
        assert sdm.stats.sm_row_lookups > 0
        assert sdm.io_engine.stats.ios_submitted == sdm.stats.sm_ios
        assert sdm.device_stats().reads == sdm.stats.sm_ios


class TestColdVsWarmCache:
    def test_clearing_caches_degrades_then_recovers(self):
        model = small_model()
        sdm = small_sdm(model)
        queries = small_queries(model, 60)
        for query in queries[:30]:
            sdm.pooled_embeddings(query.user_indices, 0.0)
        warm_rate = sdm.row_cache_hit_rate
        assert warm_rate > 0

        sdm.clear_caches()
        sdm.reset_stats()
        for query in queries[:5]:
            sdm.pooled_embeddings(query.user_indices, 0.0)
        cold_rate = sdm.row_cache_hit_rate
        assert cold_rate <= warm_rate
