"""Tests for de-pruning at load time (Algorithm 2)."""

import numpy as np
import pytest

from repro.core import deprune_table
from repro.dlrm import EmbeddingTable, EmbeddingTableSpec, prune_table
from repro.dlrm.pruning import PRUNED


def _pruned(num_rows=64, dim=8, fraction=0.25, seed=0):
    spec = EmbeddingTableSpec(
        name="t", num_rows=num_rows, dim=dim, is_user=True, avg_pooling_factor=4.0
    )
    table = EmbeddingTable.random(spec, seed=seed)
    return table, prune_table(table, fraction)


class TestDeprune:
    def test_restores_unpruned_index_space(self):
        _, pruned = _pruned()
        result = deprune_table(pruned)
        assert result.table.spec.num_rows == pruned.original_spec.num_rows

    def test_kept_rows_match_original(self):
        table, pruned = _pruned()
        result = deprune_table(pruned)
        kept = np.nonzero(pruned.mapping != PRUNED)[0]
        np.testing.assert_array_equal(result.table.data[kept], table.data[kept])

    def test_pruned_rows_dequantise_to_zero(self):
        _, pruned = _pruned()
        result = deprune_table(pruned)
        zero_rows = np.nonzero(pruned.mapping == PRUNED)[0]
        dense = result.table.lookup_dense(zero_rows[:5])
        np.testing.assert_array_equal(dense, np.zeros_like(dense))

    def test_bag_matches_pruned_semantics(self):
        """Pooled output of the de-pruned table equals the pruned table's
        (zeros contribute nothing), so model quality is unchanged."""
        _, pruned = _pruned()
        indices = [0, 5, 17, 33, 60]
        result = deprune_table(pruned)
        np.testing.assert_allclose(
            result.table.bag(indices), pruned.bag(indices), rtol=1e-6
        )

    def test_frees_mapping_tensor_fm_bytes(self):
        _, pruned = _pruned()
        result = deprune_table(pruned)
        assert result.freed_fm_bytes == pruned.mapping_tensor_bytes
        assert result.freed_fm_bytes > 0

    def test_extra_sm_bytes_equals_zero_rows(self):
        _, pruned = _pruned(num_rows=100, fraction=0.4)
        result = deprune_table(pruned)
        assert result.num_zero_rows == 40
        assert result.extra_sm_bytes == 40 * pruned.table.spec.row_bytes

    def test_sm_growth_factor(self):
        _, pruned = _pruned(num_rows=100, fraction=0.5)
        result = deprune_table(pruned)
        assert result.sm_growth_factor == pytest.approx(2.0)

    def test_depruned_spec_not_marked_pruned(self):
        _, pruned = _pruned()
        result = deprune_table(pruned)
        assert result.table.spec.pruned_fraction == 0.0
        assert result.table.spec.name == pruned.original_spec.name

    def test_noop_when_nothing_pruned(self):
        table, pruned = _pruned(fraction=0.0)
        result = deprune_table(pruned)
        assert result.num_zero_rows == 0
        np.testing.assert_array_equal(result.table.data, table.data)
