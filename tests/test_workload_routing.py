"""Tests for query routing (user-sticky vs random)."""

import pytest

from repro.workload import QueryGenerator, RequestRouter, RoutingPolicy, WorkloadConfig

from helpers import small_model


class TestRequestRouter:
    def test_sticky_routing_is_deterministic_per_user(self):
        model = small_model()
        queries = QueryGenerator(model, WorkloadConfig(item_batch=1)).generate(50)
        router = RequestRouter(num_hosts=4, policy=RoutingPolicy.USER_STICKY)
        by_user = {}
        for query in queries:
            host = router.route(query)
            if query.user_id in by_user:
                assert by_user[query.user_id] == host
            by_user[query.user_id] = host

    def test_sticky_routing_stable_across_router_instances(self):
        model = small_model()
        query = QueryGenerator(model, WorkloadConfig(item_batch=1)).generate_query()
        a = RequestRouter(8, RoutingPolicy.USER_STICKY).route(query)
        b = RequestRouter(8, RoutingPolicy.USER_STICKY).route(query)
        assert a == b

    def test_random_routing_spreads_load(self):
        model = small_model()
        queries = QueryGenerator(model, WorkloadConfig(item_batch=1)).generate(200)
        router = RequestRouter(4, RoutingPolicy.RANDOM, seed=0)
        per_host = router.split(queries)
        assert len(per_host) == 4
        assert all(len(host_queries) > 20 for host_queries in per_host.values())

    def test_split_preserves_all_queries(self):
        model = small_model()
        queries = QueryGenerator(model, WorkloadConfig(item_batch=1)).generate(100)
        per_host = RequestRouter(4).split(queries)
        assert sum(len(v) for v in per_host.values()) == 100

    def test_invalid_host_count_rejected(self):
        with pytest.raises(ValueError):
            RequestRouter(0)

    def test_policy_accepts_string(self):
        assert RequestRouter(2, "random").policy is RoutingPolicy.RANDOM

    def test_sticky_routing_increases_per_host_reuse(self):
        """Figure 4c: a host sees higher temporal locality under user-sticky
        routing than under random routing, because a user's repeated index
        sequences all land on the same host."""
        model = small_model(num_rows=2048)
        config = WorkloadConfig(
            item_batch=1,
            num_users=64,
            user_zipf_alpha=1.3,
            sequence_repeat_probability=0.0,
            user_reuse_probability=1.0,
            sequence_pool_size=64,
        )
        generator = QueryGenerator(model, config, seed=0)
        queries = generator.generate(400)
        table = model.user_table_specs[0].name

        def mean_unique_fraction(router: RequestRouter) -> float:
            """Unique rows / total accesses per host; lower means more reuse."""
            fractions = []
            for host_queries in router.split(queries).values():
                if len(host_queries) < 10:
                    continue
                trace = generator.access_trace(host_queries, table)
                fractions.append(len(set(trace)) / len(trace))
            assert fractions
            return sum(fractions) / len(fractions)

        sticky = mean_unique_fraction(RequestRouter(4, RoutingPolicy.USER_STICKY))
        random = mean_unique_fraction(RequestRouter(4, RoutingPolicy.RANDOM, seed=1))
        assert sticky <= random
