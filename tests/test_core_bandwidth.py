"""Tests for the bandwidth/IOPS requirement analysis (Eq. 1-4, 8)."""

import pytest

from repro.core import (
    bandwidth_requirement,
    bytes_per_query,
    iops_requirement,
    sm_time_budget,
    table_bandwidth_summary,
)
from repro.core.bandwidth import capacity_split, required_sm_bandwidth
from repro.dlrm import M1_SPEC, M2_SPEC
from repro.dlrm.model_config import TableProfile
from repro.dlrm.embedding import EmbeddingTableSpec


def _profiles():
    user = TableProfile(
        spec=EmbeddingTableSpec(
            name="u", num_rows=1000, dim=56, is_user=True, avg_pooling_factor=10
        ),
        batch_size=1,
    )
    item = TableProfile(
        spec=EmbeddingTableSpec(
            name="i", num_rows=1000, dim=56, is_user=False, avg_pooling_factor=5
        ),
        batch_size=20,
    )
    return [user, item]


class TestBandwidthRequirement:
    def test_bytes_per_query_sums_user_and_item(self):
        profiles = _profiles()
        row_bytes = profiles[0].spec.row_bytes
        expected = 1 * 10 * row_bytes + 20 * 5 * row_bytes
        assert bytes_per_query(profiles) == pytest.approx(expected)

    def test_bandwidth_scales_with_qps(self):
        profiles = _profiles()
        requirement = bandwidth_requirement(profiles, qps=100)
        assert requirement.total_bandwidth == pytest.approx(100 * bytes_per_query(profiles))

    def test_item_bandwidth_dominates_due_to_batching(self):
        requirement = bandwidth_requirement(_profiles(), qps=10)
        assert requirement.item_bandwidth > requirement.user_bandwidth

    def test_user_iops_eq8(self):
        requirement = bandwidth_requirement(_profiles(), qps=100)
        assert requirement.user_iops == pytest.approx(100 * 10)

    def test_invalid_qps_rejected(self):
        with pytest.raises(ValueError):
            bandwidth_requirement(_profiles(), qps=0)


class TestIOPSRequirement:
    def test_m1_iops_matches_paper_section_51(self):
        """120 QPS x 50 SM tables x 42 average pooling ~= 246 kIOPS."""
        specs = [
            EmbeddingTableSpec(
                name=f"u{i}", num_rows=1000, dim=120, is_user=True, avg_pooling_factor=42
            )
            for i in range(50)
        ]
        profiles = [TableProfile(spec=s, batch_size=1) for s in specs]
        iops = iops_requirement(profiles, qps=120)
        assert iops == pytest.approx(252_000)
        assert iops == pytest.approx(246_000, rel=0.05)

    def test_cache_hit_rate_reduces_iops(self):
        profiles = _profiles()
        assert iops_requirement(profiles, 100, cache_hit_rate=0.9) == pytest.approx(
            0.1 * iops_requirement(profiles, 100, cache_hit_rate=0.0)
        )

    def test_restriction_to_sm_tables(self):
        profiles = _profiles()
        assert iops_requirement(profiles, 100, sm_table_names=["u"]) == pytest.approx(
            100 * 10
        )
        assert iops_requirement(profiles, 100, sm_table_names=[]) == 0

    def test_invalid_hit_rate_rejected(self):
        with pytest.raises(ValueError):
            iops_requirement(_profiles(), 100, cache_hit_rate=1.5)


class TestTimeBudget:
    def test_budget_is_item_fetch_time(self):
        profiles = _profiles()
        budget = sm_time_budget(profiles, fast_memory_bandwidth=10e9)
        item_bytes = profiles[1].bytes_per_query
        assert budget == pytest.approx(item_bytes / 10e9)

    def test_required_sm_bandwidth_balances_eq4(self):
        profiles = _profiles()
        fm_bw = 10e9
        sm_bw = required_sm_bandwidth(profiles, fm_bw)
        user_bytes = profiles[0].bytes_per_query
        item_bytes = profiles[1].bytes_per_query
        # user_time == item_time at the required SM bandwidth
        assert user_bytes / sm_bw == pytest.approx(item_bytes / fm_bw)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            sm_time_budget(_profiles(), 0)


class TestSummaries:
    def test_table_bandwidth_summary_rows(self):
        rows = table_bandwidth_summary(_profiles())
        assert len(rows) == 2
        name, is_user, size, bpq = rows[0]
        assert name == "u"
        assert is_user is True
        assert size > 0 and bpq > 0

    def test_capacity_split_for_paper_models(self):
        for spec in (M1_SPEC, M2_SPEC):
            split = capacity_split(spec.table_profiles(seed=0))
            assert split["user_fraction"] > 0.5
            assert split["user_fraction"] + split["item_fraction"] == pytest.approx(1.0)
