"""Equivalence tests for the structure-of-arrays LRU cache.

``SoALRUCache`` is the array-native engine behind the batched serve core;
its contract is *bit-identical observables* to ``LRUCache`` — same hits,
misses, evictions, eviction order, ``used_bytes`` and modelled CPU
seconds — whether it is driven through the scalar API or the batch API.
These tests drive both caches through mirrored operation sequences and
compare every observable.
"""

import numpy as np
import pytest

from repro.cache import LRUCache
from repro.cache.soa import SoALRUCache
from repro.sim.rng import make_rng


def _pair(capacity=1024, overhead=0):
    return (
        LRUCache(capacity, per_item_overhead_bytes=overhead),
        SoALRUCache(capacity, per_item_overhead_bytes=overhead),
    )


def _row(table, stored, row_len=8):
    rng = make_rng(0, "soa-test-row", table, stored)
    return rng.integers(0, 256, size=row_len, dtype=np.uint8).tobytes()


def _assert_same_observables(reference, soa):
    assert soa.stats.hits == reference.stats.hits
    assert soa.stats.misses == reference.stats.misses
    assert soa.stats.inserts == reference.stats.inserts
    assert soa.stats.evictions == reference.stats.evictions
    assert soa.stats.rejected_inserts == reference.stats.rejected_inserts
    assert soa.stats.cpu_seconds == reference.stats.cpu_seconds
    assert soa.used_bytes == reference.used_bytes
    assert soa.item_count == reference.item_count
    assert list(soa.keys()) == list(reference.keys())


class TestScalarEquivalence:
    def test_random_op_sequence_matches_lru(self):
        reference, soa = _pair(capacity=40 * 16, overhead=8)
        rng = make_rng(0, "soa-test", "scalar-ops")
        for _ in range(2000):
            stored = int(rng.integers(0, 64))
            key = ("t", stored)
            op = rng.random()
            if op < 0.5:
                assert soa.get(key) == reference.get(key)
            elif op < 0.9:
                value = _row("t", stored)
                assert soa.put(key, value) == reference.put(key, value)
            else:
                assert soa.contains(key) == reference.contains(key)
            _assert_same_observables(reference, soa)

    def test_non_row_keys_supported(self):
        reference, soa = _pair()
        for cache in (reference, soa):
            cache.put("plain-string", b"v1")
            cache.put(("tuple", "of", "strings"), b"v2")
        assert soa.get("plain-string") == reference.get("plain-string")
        assert soa.get(("tuple", "of", "strings")) == reference.get(
            ("tuple", "of", "strings")
        )
        _assert_same_observables(reference, soa)

    def test_oversized_value_rejected(self):
        reference, soa = _pair(capacity=16)
        for cache in (reference, soa):
            assert not cache.put(("t", 0), bytes(64))
        _assert_same_observables(reference, soa)

    def test_invalidate_and_clear(self):
        reference, soa = _pair()
        for cache in (reference, soa):
            cache.put(("t", 1), b"a")
            cache.put(("t", 2), b"b")
            assert cache.invalidate(("t", 1))
            assert not cache.invalidate(("t", 1))
        _assert_same_observables(reference, soa)
        for cache in (reference, soa):
            cache.clear()
        _assert_same_observables(reference, soa)
        # The index survives a clear: new inserts must still be found.
        for cache in (reference, soa):
            cache.put(("t", 2), b"c")
        assert soa.get(("t", 2)) == reference.get(("t", 2))
        _assert_same_observables(reference, soa)

    def test_eviction_order_is_lru(self):
        reference, soa = _pair(capacity=3 * 4, overhead=0)
        for cache in (reference, soa):
            cache.put(("t", 0), b"aaaa")
            cache.put(("t", 1), b"bbbb")
            cache.put(("t", 2), b"cccc")
            cache.get(("t", 0))  # touch: 0 becomes most recent
            cache.put(("t", 3), b"dddd")  # evicts 1, the least recent
        assert soa.contains(("t", 0)) and reference.contains(("t", 0))
        assert not soa.contains(("t", 1)) and not reference.contains(("t", 1))
        _assert_same_observables(reference, soa)


class TestBatchEquivalence:
    def test_probe_batch_equals_scalar_gets(self):
        reference, soa = _pair(capacity=4096)
        rng = make_rng(0, "soa-test", "probe-batch")
        row_len = 8
        for stored in range(24):
            value = _row("t", stored, row_len)
            reference.put(("t", stored), value)
            soa.put(("t", stored), value)
        for _ in range(50):
            stored = rng.integers(-4, 40, size=16)  # includes misses + negatives
            expected = [reference.get(("t", int(s))) for s in stored]
            hit_mask, values = soa.probe_batch("t", stored, row_len)
            assert list(hit_mask) == [row is not None for row in expected]
            hits = [row for row in expected if row is not None]
            assert [bytes(v) for v in values] == hits
            _assert_same_observables(reference, soa)

    def test_fill_batch_equals_scalar_puts(self):
        reference, soa = _pair(capacity=24 * 16, overhead=8)
        rng = make_rng(0, "soa-test", "fill-batch")
        row_len = 8
        for _ in range(40):
            stored = rng.integers(0, 64, size=8)
            matrix = np.stack(
                [
                    np.frombuffer(_row("t", int(s), row_len), dtype=np.uint8)
                    for s in stored
                ]
            )
            for s, row in zip(stored, matrix):
                reference.put(("t", int(s)), row.tobytes())
            soa.fill_batch("t", stored, matrix)
            _assert_same_observables(reference, soa)

    def test_contains_batch_has_no_side_effects(self):
        _, soa = _pair()
        soa.put(("t", 3), b"x")
        before = (soa.stats.hits, soa.stats.misses, soa.stats.cpu_seconds)
        mask = soa.contains_batch("t", np.array([-1, 0, 3, 99]))
        assert list(mask) == [False, False, True, False]
        assert (soa.stats.hits, soa.stats.misses, soa.stats.cpu_seconds) == before

    def test_probe_batch_duplicate_rows_keep_last_stamp(self):
        reference, soa = _pair(capacity=2 * 4)
        for cache in (reference, soa):
            cache.put(("t", 0), b"aaaa")
            cache.put(("t", 1), b"bbbb")
        # Scalar walk: get(0), get(1), get(0) leaves 1 least-recent.
        for s in (0, 1, 0):
            reference.get(("t", s))
        soa.probe_batch("t", np.array([0, 1, 0]), 4)
        for cache in (reference, soa):
            cache.put(("t", 2), b"cccc")  # evicts 1 in both
        assert not soa.contains(("t", 1)) and not reference.contains(("t", 1))
        _assert_same_observables(reference, soa)

    def test_probe_batch_row_length_mismatch_raises(self):
        _, soa = _pair()
        soa.put(("t", 0), b"aaaa")
        with pytest.raises(ValueError):
            soa.probe_batch("t", np.array([0]), 8)

    def test_fill_batch_oversized_rows_all_rejected(self):
        reference, soa = _pair(capacity=4)
        stored = np.array([0, 1, 2])
        matrix = np.zeros((3, 64), dtype=np.uint8)
        for s, row in zip(stored, matrix):
            reference.put(("t", int(s)), row.tobytes())
        soa.fill_batch("t", stored, matrix)
        _assert_same_observables(reference, soa)

    def test_empty_batches_are_noops(self):
        _, soa = _pair()
        hit_mask, values = soa.probe_batch("t", np.empty(0, dtype=np.int64), 4)
        assert hit_mask.size == 0 and values.shape == (0, 4)
        soa.fill_batch("t", np.empty(0, dtype=np.int64), np.empty((0, 4), np.uint8))
        assert soa.stats.inserts == 0 and soa.stats.cpu_seconds == 0.0
