"""Tests for embedding tables and pooled lookups."""

import numpy as np
import pytest

from repro.dlrm import EmbeddingTable, EmbeddingTableSpec, dequantize_rows


def _spec(**kwargs):
    defaults = dict(
        name="t", num_rows=64, dim=16, is_user=True, avg_pooling_factor=4.0
    )
    defaults.update(kwargs)
    return EmbeddingTableSpec(**defaults)


class TestEmbeddingTableSpec:
    def test_row_bytes_includes_quant_params(self):
        assert _spec(dim=64).row_bytes == 72

    def test_size_bytes(self):
        spec = _spec(num_rows=100, dim=64)
        assert spec.size_bytes == 100 * 72

    def test_bytes_per_query(self):
        spec = _spec(dim=64, avg_pooling_factor=10)
        assert spec.bytes_per_query == pytest.approx(720)

    def test_with_rows(self):
        assert _spec().with_rows(10).num_rows == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            _spec(num_rows=0)
        with pytest.raises(ValueError):
            _spec(dim=0)
        with pytest.raises(ValueError):
            _spec(quant_bits=3)
        with pytest.raises(ValueError):
            _spec(avg_pooling_factor=0)
        with pytest.raises(ValueError):
            _spec(pruned_fraction=1.0)


class TestEmbeddingTable:
    def test_random_table_is_reproducible(self):
        spec = _spec()
        a = EmbeddingTable.random(spec, seed=5)
        b = EmbeddingTable.random(spec, seed=5)
        np.testing.assert_array_equal(a.data, b.data)

    def test_different_seeds_differ(self):
        spec = _spec()
        a = EmbeddingTable.random(spec, seed=1)
        b = EmbeddingTable.random(spec, seed=2)
        assert not np.array_equal(a.data, b.data)

    def test_from_float_shape_checked(self):
        spec = _spec(num_rows=4, dim=8)
        with pytest.raises(ValueError):
            EmbeddingTable.from_float(spec, np.zeros((4, 9), dtype=np.float32))

    def test_wrong_quantized_shape_rejected(self):
        spec = _spec(num_rows=4, dim=8)
        with pytest.raises(ValueError):
            EmbeddingTable(spec, np.zeros((4, 10), dtype=np.uint8))

    def test_lookup_dense_matches_manual_dequantisation(self):
        spec = _spec(num_rows=8, dim=12)
        table = EmbeddingTable.random(spec, seed=0)
        dense = table.lookup_dense([1, 3])
        manual = dequantize_rows(table.data[[1, 3]], dim=12)
        np.testing.assert_array_equal(dense, manual)

    def test_bag_is_sum_of_rows(self):
        spec = _spec(num_rows=8, dim=4)
        table = EmbeddingTable.random(spec, seed=0)
        pooled = table.bag([0, 2, 5])
        expected = table.lookup_dense([0, 2, 5]).sum(axis=0)
        np.testing.assert_allclose(pooled, expected)

    def test_bag_order_invariance(self):
        spec = _spec(num_rows=8, dim=4)
        table = EmbeddingTable.random(spec, seed=0)
        np.testing.assert_allclose(table.bag([1, 2, 3]), table.bag([3, 1, 2]), rtol=1e-6)

    def test_row_bytes_at_matches_data(self):
        spec = _spec(num_rows=4, dim=8)
        table = EmbeddingTable.random(spec, seed=0)
        assert table.row_bytes_at(2) == table.data[2].tobytes()

    def test_out_of_range_lookup_rejected(self):
        table = EmbeddingTable.random(_spec(num_rows=4), seed=0)
        with pytest.raises(IndexError):
            table.lookup_dense([4])
        with pytest.raises(IndexError):
            table.lookup_dense([-1])

    def test_empty_lookup_rejected(self):
        table = EmbeddingTable.random(_spec(), seed=0)
        with pytest.raises(ValueError):
            table.lookup_dense([])

    def test_iter_row_bytes_covers_all_rows(self):
        spec = _spec(num_rows=6, dim=4)
        table = EmbeddingTable.random(spec, seed=0)
        rows = list(table.iter_row_bytes())
        assert len(rows) == 6
        assert all(len(row) == spec.row_bytes for row in rows)

    def test_size_bytes_matches_spec(self):
        spec = _spec(num_rows=10, dim=8)
        table = EmbeddingTable.random(spec, seed=0)
        assert table.size_bytes == spec.size_bytes

    def test_int4_table_roundtrip(self):
        spec = _spec(dim=16, quant_bits=4)
        table = EmbeddingTable.random(spec, seed=0)
        dense = table.lookup_dense([0, 1])
        assert dense.shape == (2, 16)
        assert np.isfinite(dense).all()

    def test_repr_mentions_name(self):
        assert "t" in repr(EmbeddingTable.random(_spec(), seed=0))
