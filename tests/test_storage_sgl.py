"""Tests for scatter-gather sub-block reads (section 4.1.1)."""

import pytest

from repro.sim.units import BLOCK_SIZE
from repro.storage import ScatterGatherEntry, ScatterGatherList


class TestScatterGatherEntry:
    def test_dword_alignment_expands_range(self):
        entry = ScatterGatherEntry(offset=10, length=7)
        offset, length = entry.dword_aligned()
        assert offset == 8
        assert length == 12  # [8, 20) covers [10, 17)

    def test_aligned_entry_unchanged(self):
        entry = ScatterGatherEntry(offset=128, length=64)
        assert entry.dword_aligned() == (128, 64)

    def test_range_outside_block_rejected(self):
        with pytest.raises(ValueError):
            ScatterGatherEntry(offset=BLOCK_SIZE - 4, length=8)

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            ScatterGatherEntry(offset=0, length=0)

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            ScatterGatherEntry(offset=-4, length=8)


class TestScatterGatherList:
    def test_requested_bytes_sums_entries(self):
        sgl = ScatterGatherList()
        sgl.add(0, 128)
        sgl.add(512, 64)
        assert sgl.requested_bytes() == 192

    def test_without_sub_block_full_block_transfers(self):
        sgl = ScatterGatherList()
        sgl.add(0, 128)
        assert sgl.transferred_bytes(sub_block_enabled=False) == BLOCK_SIZE

    def test_with_sub_block_only_requested_range_transfers(self):
        sgl = ScatterGatherList()
        sgl.add(256, 128)
        assert sgl.transferred_bytes(sub_block_enabled=True) == 128

    def test_overlapping_entries_are_merged(self):
        sgl = ScatterGatherList()
        sgl.add(0, 100)
        sgl.add(50, 100)
        assert sgl.transferred_bytes(sub_block_enabled=True) == 152  # [0, 152) dword aligned

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            ScatterGatherList().transferred_bytes(sub_block_enabled=True)

    def test_bus_savings_for_typical_embedding_row(self):
        """A 128-256B row read out of a 4KiB block saves >= 75% of bus BW
        (the figure quoted in the paper)."""
        for row_bytes in (128, 192, 256):
            sgl = ScatterGatherList()
            sgl.add(1024, row_bytes)
            assert sgl.bus_savings_fraction() >= 0.75

    def test_full_block_request_saves_nothing(self):
        sgl = ScatterGatherList()
        sgl.add(0, BLOCK_SIZE)
        assert sgl.bus_savings_fraction() == pytest.approx(0.0)

    def test_dword_granularity_minimum_transfer(self):
        sgl = ScatterGatherList()
        sgl.add(0, 1)
        assert sgl.transferred_bytes(sub_block_enabled=True) == 4
