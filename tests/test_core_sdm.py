"""Tests for the SoftwareDefinedMemory backend (the paper's core system)."""

import numpy as np
import pytest

from repro.core import AccessPathKind, PlacementPolicy, SoftwareDefinedMemory, Tier
from repro.dlrm import prune_table
from repro.storage import IOEngineConfig, Technology

from helpers import reference_pooled, small_model, small_queries, small_sdm, small_sdm_config


class TestSDMSetup:
    def test_user_tables_loaded_to_sm(self):
        model = small_model(num_user=2, num_item=1)
        sdm = small_sdm(model)
        assert set(sdm.placement.sm_tables()) == {"user_0", "user_1"}
        assert sdm.sm_footprint_bytes() > 0

    def test_item_tables_not_on_sm(self):
        model = small_model()
        sdm = small_sdm(model)
        assert sdm.placement.tier_of("item_0") is Tier.FM_DIRECT

    def test_fm_footprint_includes_caches(self):
        model = small_model()
        sdm = small_sdm(model)
        assert sdm.fm_footprint_bytes() >= (
            sdm.row_cache.capacity_bytes + sdm.pooled_cache.capacity_bytes
        )

    def test_devices_built_from_config(self):
        sdm = small_sdm(small_model(), num_devices=3, device_technology=Technology.OPTANE_SSD)
        assert len(sdm.devices) == 3
        assert all(d.spec.technology is Technology.OPTANE_SSD for d in sdm.devices)

    def test_unknown_pruned_table_rejected(self):
        model = small_model()
        other = small_model()
        pruned = prune_table(other.table("user_0"), 0.2)
        with pytest.raises(ValueError):
            SoftwareDefinedMemory(
                model,
                small_sdm_config(),
                pruned_tables={"ghost": pruned},
            )

    def test_pooled_cache_optional(self):
        sdm = small_sdm(small_model(), pooled_cache_enabled=False)
        assert sdm.pooled_cache is None
        assert sdm.pooled_cache_hit_rate == 0.0


class TestSDMNumericalCorrectness:
    def test_pooled_embeddings_match_dram_reference(self):
        """The headline invariant: serving from SM + cache returns exactly the
        same pooled vectors as serving from DRAM."""
        model = small_model()
        sdm = small_sdm(model)
        for query in small_queries(model, 10):
            pooled, _ = sdm.pooled_embeddings(query.user_indices, start_time=0.0)
            reference = reference_pooled(model, query)
            for table_name, vector in reference.items():
                np.testing.assert_allclose(pooled[table_name], vector, rtol=1e-5, atol=1e-6)

    def test_correctness_preserved_across_repeated_queries(self):
        """Cache hits (row cache and pooled cache) must not change results."""
        model = small_model()
        sdm = small_sdm(model)
        query = small_queries(model, 1)[0]
        first, _ = sdm.pooled_embeddings(query.user_indices, 0.0)
        second, _ = sdm.pooled_embeddings(query.user_indices, 0.0)
        for table_name in first:
            np.testing.assert_allclose(first[table_name], second[table_name], rtol=1e-6)

    def test_correctness_with_mmap_access_path(self):
        model = small_model()
        sdm = small_sdm(model, access_path=AccessPathKind.MMAP)
        query = small_queries(model, 1)[0]
        pooled, _ = sdm.pooled_embeddings(query.user_indices, 0.0)
        for table_name, vector in reference_pooled(model, query).items():
            np.testing.assert_allclose(pooled[table_name], vector, rtol=1e-5, atol=1e-6)

    def test_correctness_with_dequantize_at_load(self):
        model = small_model()
        sdm = small_sdm(model, dequantize_at_load=True)
        query = small_queries(model, 1)[0]
        pooled, _ = sdm.pooled_embeddings(query.user_indices, 0.0)
        for table_name, vector in reference_pooled(model, query).items():
            np.testing.assert_allclose(pooled[table_name], vector, rtol=1e-5, atol=1e-5)

    def test_correctness_without_sub_block_reads(self):
        model = small_model()
        sdm = small_sdm(model, io=IOEngineConfig(sub_block_reads=False))
        query = small_queries(model, 1)[0]
        pooled, _ = sdm.pooled_embeddings(query.user_indices, 0.0)
        for table_name, vector in reference_pooled(model, query).items():
            np.testing.assert_allclose(pooled[table_name], vector, rtol=1e-5, atol=1e-6)

    def test_fm_direct_tables_served_from_model(self):
        model = small_model()
        sdm = small_sdm(
            model,
            placement_policy=PlacementPolicy.FIXED_FM_SM,
            dram_budget_bytes=model.table("user_0").size_bytes,
        )
        assert sdm.placement.tier_of("user_0") is Tier.FM_DIRECT
        pooled, _ = sdm.pooled_embeddings({"user_0": [1, 2, 3]}, 0.0)
        np.testing.assert_allclose(pooled["user_0"], model.table("user_0").bag([1, 2, 3]))


class TestSDMPrunedTables:
    def _pruned_setup(self, deprune):
        model = small_model()
        pruned = {"user_0": prune_table(model.table("user_0"), 0.3, seed=1)}
        sdm = SoftwareDefinedMemory(
            model,
            small_sdm_config(deprune_at_load=deprune),
            pruned_tables=pruned,
        )
        return model, pruned, sdm

    def test_pruned_serving_matches_pruned_reference(self):
        model, pruned, sdm = self._pruned_setup(deprune=False)
        indices = [0, 3, 17, 42, 100, 200]
        pooled, _ = sdm.pooled_embeddings({"user_0": indices}, 0.0)
        np.testing.assert_allclose(
            pooled["user_0"], pruned["user_0"].bag(indices), rtol=1e-5, atol=1e-6
        )

    def test_depruned_serving_matches_pruned_reference(self):
        model, pruned, sdm = self._pruned_setup(deprune=True)
        indices = [0, 3, 17, 42, 100, 200]
        pooled, _ = sdm.pooled_embeddings({"user_0": indices}, 0.0)
        np.testing.assert_allclose(
            pooled["user_0"], pruned["user_0"].bag(indices), rtol=1e-5, atol=1e-6
        )

    def test_mapping_tensor_consumes_fm_only_without_depruning(self):
        _, pruned, with_mapping = self._pruned_setup(deprune=False)
        _, _, depruned = self._pruned_setup(deprune=True)
        difference = with_mapping.fm_footprint_bytes() - depruned.fm_footprint_bytes()
        assert difference == pruned["user_0"].mapping_tensor_bytes

    def test_depruning_grows_sm_footprint(self):
        _, _, with_mapping = self._pruned_setup(deprune=False)
        _, _, depruned = self._pruned_setup(deprune=True)
        assert depruned.sm_footprint_bytes() >= with_mapping.sm_footprint_bytes()

    def test_pruned_rows_skipped_counted(self):
        model, pruned, sdm = self._pruned_setup(deprune=False)
        mapping = pruned["user_0"].mapping
        pruned_index = int(np.nonzero(mapping == -1)[0][0])
        sdm.pooled_embeddings({"user_0": [pruned_index]}, 0.0)
        assert sdm.stats.pruned_rows_skipped == 1


class TestSDMTimingAndStats:
    def test_misses_cost_more_time_than_hits(self):
        model = small_model()
        sdm = small_sdm(model, pooled_cache_enabled=False)
        query = small_queries(model, 1)[0]
        _, cold_done = sdm.pooled_embeddings(query.user_indices, 0.0)
        _, warm_done = sdm.pooled_embeddings(query.user_indices, 0.0)
        assert warm_done < cold_done

    def test_pooled_cache_hit_is_fastest(self):
        model = small_model()
        sdm = small_sdm(model)
        query = small_queries(model, 1)[0]
        sdm.pooled_embeddings(query.user_indices, 0.0)
        _, pooled_hit_done = sdm.pooled_embeddings(query.user_indices, 0.0)
        assert sdm.pooled_cache.stats.hits > 0
        assert pooled_hit_done < 1e-4

    def test_row_cache_hit_rate_rises_with_repeated_serving(self):
        model = small_model()
        sdm = small_sdm(model, pooled_cache_enabled=False)
        queries = small_queries(model, 50)
        for query in queries:
            sdm.pooled_embeddings(query.user_indices, 0.0)
        assert sdm.row_cache_hit_rate > 0.2
        assert sdm.stats.sm_ios < sdm.stats.sm_row_lookups

    def test_inter_op_parallelism_reduces_completion_time(self):
        model = small_model(num_user=4)
        query = small_queries(model, 1)[0]
        parallel = small_sdm(small_model(num_user=4), inter_op_parallelism=True)
        serial = small_sdm(small_model(num_user=4), inter_op_parallelism=False)
        _, parallel_done = parallel.pooled_embeddings(query.user_indices, 0.0)
        _, serial_done = serial.pooled_embeddings(query.user_indices, 0.0)
        assert parallel_done < serial_done

    def test_queries_counted_via_on_query_complete(self):
        sdm = small_sdm()
        sdm.on_query_complete()
        sdm.on_query_complete()
        assert sdm.stats.queries == 2

    def test_reset_and_clear(self):
        model = small_model()
        sdm = small_sdm(model)
        query = small_queries(model, 1)[0]
        sdm.pooled_embeddings(query.user_indices, 0.0)
        sdm.clear_caches()
        sdm.reset_stats()
        assert sdm.stats.sm_row_lookups == 0
        assert sdm.row_cache.item_count == 0

    def test_device_stats_aggregate(self):
        model = small_model()
        sdm = small_sdm(model)
        query = small_queries(model, 1)[0]
        sdm.pooled_embeddings(query.user_indices, 0.0)
        stats = sdm.device_stats()
        assert stats.reads > 0

    def test_empty_request_dict_returns_immediately(self):
        sdm = small_sdm()
        pooled, done = sdm.pooled_embeddings({}, 5.0)
        assert pooled == {}
        assert done == 5.0

    def test_empty_indices_rejected(self):
        sdm = small_sdm()
        with pytest.raises(ValueError):
            sdm.pooled_embeddings({"user_0": []}, 0.0)

    def test_cache_disabled_tables_always_do_io(self):
        model = small_model()
        sdm = small_sdm(
            model,
            placement_policy=PlacementPolicy.PER_TABLE_CACHE,
            cache_disable_alpha_threshold=2.0,  # disable caching for every table
            pooled_cache_enabled=False,
        )
        query = small_queries(model, 1)[0]
        sdm.pooled_embeddings(query.user_indices, 0.0)
        sdm.pooled_embeddings(query.user_indices, 0.0)
        assert sdm.row_cache.stats.lookups == 0
        assert sdm.stats.sm_ios == 2 * sum(len(v) for v in query.user_indices.values())
