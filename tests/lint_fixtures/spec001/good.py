"""SPEC001 negative fixture: valid paths and non-path strings."""

GRID_AXES = {
    "tiers.1.capacity": ["256KiB", "1MiB"],
    "serving.concurrency": [1, 2, 4],
    "backend.options.num_devices": [1, 4],
}

SWEEP_PARAM = "traffic.offered_qps"
WHOLE_SECTION = "workload"
NOT_A_SPEC_PATH = "os.path.join"  # unknown root: ignored, not validated
PROSE = "tune serving.concurrency before the run"  # spaces: not a path literal
