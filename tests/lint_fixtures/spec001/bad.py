"""SPEC001 positive fixture: typo'd and stale spec paths."""

GRID_AXES = {
    "tiers.1.capactiy": ["256KiB", "1MiB"],  # the classic transposition
    "serving.concurency": [1, 2, 4],
    "workload.num_querys": [100],
}

SWEEP_PARAM = "traffic.offered_qpz"
BAD_DESCENT = "backend.name.extra"  # descending into a scalar field
BAD_TIER_INDEX = "tiers.first.capacity"
