"""DET002 positive fixture: global-stream and unseeded randomness."""

import random

import numpy as np


def draw():
    a = random.random()
    b = np.random.rand(4)
    rng = np.random.default_rng()
    legacy = np.random.RandomState(7)
    return a, b, rng, legacy
