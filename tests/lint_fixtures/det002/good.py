"""DET002 negative fixture: seeded generators derived from the spec seed."""

import numpy as np

from repro.sim.rng import make_rng


def draw(seed: int):
    rng = make_rng(seed, "workload")
    explicit = np.random.default_rng(seed)
    return rng.random(), explicit.random()
