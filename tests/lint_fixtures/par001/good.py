"""PAR001 negative fixture: top-level workers, local callables stay local."""

import multiprocessing
from concurrent.futures import ProcessPoolExecutor


def _worker(point):
    return point * 2


def run_points(points):
    with ProcessPoolExecutor() as executor:
        futures = [executor.submit(_worker, p) for p in points]
        doubled = list(executor.map(_worker, points))
    process = multiprocessing.Process(target=_worker, args=(1,))
    # Lambdas handed to in-process callables are fine.
    ordered = sorted(points, key=lambda p: p)
    return futures, doubled, process, ordered
