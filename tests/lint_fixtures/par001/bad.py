"""PAR001 positive fixture: unpicklable callables shipped to workers."""

import multiprocessing
from concurrent.futures import ProcessPoolExecutor


def run_points(points):
    scale = 2.0

    def worker(point):  # closure over ``scale`` — does not pickle
        return point * scale

    with ProcessPoolExecutor() as executor:
        futures = [executor.submit(worker, p) for p in points]
        doubled = list(executor.map(lambda p: p * 2, points))
    process = multiprocessing.Process(target=lambda: None)
    return futures, doubled, process
