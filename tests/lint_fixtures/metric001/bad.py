"""METRIC001 positive fixture: metric names that miss the result schema."""

from repro.api.results import campaign_table, sweep_table
from repro.runtime import MetricSpec, compare_runs


def tables(points, outcomes):
    a = sweep_table(points, metric="achieved_qpz")
    b = campaign_table(outcomes, metrics=["makespan_secondz"])
    return a, b


def comparisons():
    spec = MetricSpec.parse("latency_seconds.p98:lower")
    diff = compare_runs("a", "b", metrics=["achieved_qps:sideways"])
    return spec, diff
