"""METRIC001 negative fixture: real fields and addressable result paths."""

from repro.api.results import campaign_table, sweep_table
from repro.runtime import MetricSpec, compare_runs


def tables(points, outcomes):
    a = sweep_table(points, metric="achieved_qps")
    b = campaign_table(outcomes, metrics=["achieved_qps", "makespan_seconds"])
    return a, b


def comparisons():
    spec = MetricSpec.parse("latency_seconds.p99:lower")
    diff = compare_runs("a", "b", metrics=["achieved_qps:higher", "power.fleet_power"])
    return spec, diff
