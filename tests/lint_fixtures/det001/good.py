"""DET001 negative fixture: simulated time only (plus look-alikes)."""

from repro.sim.clock import SimClock


def measure(clock: SimClock):
    start = clock.now
    clock.advance(0.1)
    return clock.now - start


def look_alike():
    # A local object that happens to be called ``time`` is not the module.
    class Stopwatch:
        def time(self):
            return 0.0

    time = Stopwatch()
    return time.time()
