"""DET001 positive fixture: wall-clock reads in library code."""

import time
from datetime import datetime
from time import monotonic


def measure():
    start = time.time()
    tick = monotonic()
    stamp = datetime.now()
    time.sleep(0.1)
    return start, tick, stamp
