"""FROZEN001 positive fixture: freeze violations and mutable defaults."""

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class Spec:
    name: str
    tags: List[str] = []  # mutable default
    options: Dict[str, int] = dict()  # mutable default via constructor

    def rename(self, name: str) -> None:
        self.name = name  # plain assignment on a frozen instance


@dataclass
class Tracker:
    count: int = 0

    def bump(self) -> None:
        # object.__setattr__ outside any frozen dataclass's __post_init__
        object.__setattr__(self, "count", self.count + 1)
