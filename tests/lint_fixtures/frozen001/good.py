"""FROZEN001 negative fixture: sanctioned idioms only."""

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class Spec:
    name: str
    tags: Tuple[str, ...] = ()
    extras: List[str] = field(default_factory=list)
    options: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Normalisation through the sanctioned escape hatch.
        object.__setattr__(self, "name", self.name.strip())

    def renamed(self, name: str) -> "Spec":
        return dataclasses.replace(self, name=name)


@dataclass
class Tracker:
    count: int = 0
    label = "tracker"  # bare class attribute, not a dataclass field

    def bump(self) -> None:
        self.count += 1  # mutation of a *non-frozen* dataclass is fine
