"""UNIT001 positive fixture: magic byte sizes and unit-family mixing."""

from repro.sim.units import GB, GIB

cache_capacity_bytes = 1 << 30
row_bytes = 4096


def configure(capacity_bytes=1024 * 1024):
    budget = 2 * GB + GIB  # decimal and binary mixed in one expression
    return capacity_bytes, budget
