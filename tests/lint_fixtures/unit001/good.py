"""UNIT001 negative fixture: sim.units constants, counts left alone."""

from repro.sim.units import GB, GIB, KIB, parse_size

cache_capacity_bytes = GIB
row_bytes = 4 * KIB
model_capacity_bytes = 1000 * GB  # a literal *multiplier* of a unit is fine
configured_bytes = parse_size("256KiB")
batch_size = 4096  # a count, not bytes: name does not say bytes/capacity
num_queries = 1024
