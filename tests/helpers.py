"""Shared builders for the test suite.

Small, fast model/SDM instances used by many tests.  Everything is seeded so
tests are deterministic.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core import SDMConfig, SoftwareDefinedMemory
from repro.dlrm import (
    ComputeSpec,
    DLRMModel,
    EmbeddingTable,
    EmbeddingTableSpec,
    InferenceEngine,
    MLP,
    Query,
)
from repro.workload import QueryGenerator, WorkloadConfig


def small_table_specs(
    num_user: int = 2,
    num_item: int = 1,
    num_rows: int = 256,
    dim: int = 16,
    pooling_factor: float = 6.0,
) -> List[EmbeddingTableSpec]:
    """A handful of small user and item table specs."""
    specs: List[EmbeddingTableSpec] = []
    for index in range(num_user):
        specs.append(
            EmbeddingTableSpec(
                name=f"user_{index}",
                num_rows=num_rows,
                dim=dim,
                is_user=True,
                avg_pooling_factor=pooling_factor,
                zipf_alpha=1.05,
            )
        )
    for index in range(num_item):
        specs.append(
            EmbeddingTableSpec(
                name=f"item_{index}",
                num_rows=num_rows,
                dim=dim,
                is_user=False,
                avg_pooling_factor=3.0,
                zipf_alpha=1.2,
            )
        )
    return specs


def small_model(
    num_user: int = 2,
    num_item: int = 1,
    num_rows: int = 256,
    dim: int = 16,
    dense_dim: int = 4,
    item_batch: int = 3,
    seed: int = 0,
) -> DLRMModel:
    """A tiny but complete DLRM for fast end-to-end tests."""
    specs = small_table_specs(num_user, num_item, num_rows, dim)
    tables: Dict[str, EmbeddingTable] = {
        spec.name: EmbeddingTable.random(spec, seed=seed) for spec in specs
    }
    bottom_out = 8
    total_dim = sum(spec.dim for spec in specs)
    bottom = MLP([dense_dim, 16, bottom_out], seed=seed, name="test/bottom")
    top = MLP([bottom_out + total_dim, 16, 1], seed=seed, name="test/top")
    return DLRMModel(
        name="test-model",
        bottom_mlp=bottom,
        top_mlp=top,
        tables=tables,
        dense_dim=dense_dim,
        item_batch=item_batch,
    )


def small_sdm_config(**overrides) -> SDMConfig:
    """An SDM config sized for the small test model."""
    defaults = dict(
        row_cache_capacity_bytes=256 * 1024,
        pooled_cache_capacity_bytes=128 * 1024,
        num_devices=2,
        seed=0,
    )
    defaults.update(overrides)
    return SDMConfig(**defaults)


def small_sdm(model: Optional[DLRMModel] = None, **config_overrides) -> SoftwareDefinedMemory:
    """An SDM instance serving the small test model."""
    model = model if model is not None else small_model()
    return SoftwareDefinedMemory(model, small_sdm_config(**config_overrides))


def small_engine(
    model: Optional[DLRMModel] = None, sdm: Optional[SoftwareDefinedMemory] = None
) -> InferenceEngine:
    """An inference engine wired to an SDM user backend."""
    model = model if model is not None else small_model()
    sdm = sdm if sdm is not None else small_sdm(model)
    return InferenceEngine(model, ComputeSpec(), user_backend=sdm)


def small_queries(model: DLRMModel, count: int = 20, seed: int = 0) -> List[Query]:
    """A deterministic query stream for the small model."""
    generator = QueryGenerator(
        model,
        WorkloadConfig(item_batch=model.item_batch, num_users=200),
        seed=seed,
    )
    return generator.generate(count)


def reference_pooled(model: DLRMModel, query: Query) -> Dict[str, np.ndarray]:
    """Reference pooled user-embedding vectors straight from fast memory."""
    return {
        name: model.table(name).bag(indices)
        for name, indices in query.user_indices.items()
    }
