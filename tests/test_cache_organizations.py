"""Tests for the memory-optimised vs CPU-optimised cache organisations."""

import pytest

from repro.cache import CPUOptimizedCache, MemoryOptimizedCache
from repro.cache.cpu_optimized import CPU_OPTIMIZED_OVERHEAD_BYTES
from repro.cache.memory_optimized import MEMORY_OPTIMIZED_OVERHEAD_BYTES


class TestOrganizationTradeoffs:
    def test_memory_optimised_has_lower_per_item_overhead(self):
        assert MEMORY_OPTIMIZED_OVERHEAD_BYTES < CPU_OPTIMIZED_OVERHEAD_BYTES

    def test_memory_optimised_stores_more_small_rows(self):
        """For small (<256B) rows the compact layout fits meaningfully more
        entries into the same byte budget -- the reason the unified cache
        routes small rows there (Figure 6)."""
        capacity = 64 * 1024
        row = bytes(64)
        memory_cache = MemoryOptimizedCache(capacity)
        cpu_cache = CPUOptimizedCache(capacity)
        for index in range(4096):
            memory_cache.put(("t", index), row)
            cpu_cache.put(("t", index), row)
        assert memory_cache.item_count > cpu_cache.item_count * 1.3

    def test_cpu_optimised_lookups_cost_less_cpu(self):
        memory_cache = MemoryOptimizedCache(1024)
        cpu_cache = CPUOptimizedCache(1024)
        memory_cache.put("k", b"v")
        cpu_cache.put("k", b"v")
        for _ in range(100):
            memory_cache.get("k")
            cpu_cache.get("k")
        assert cpu_cache.stats.cpu_seconds < memory_cache.stats.cpu_seconds

    def test_overhead_difference_negligible_for_large_rows(self):
        """For >256B rows the metadata overhead is a small fraction either
        way, so the CPU-optimised organisation is the better choice."""
        capacity = 256 * 1024
        row = bytes(512)
        memory_cache = MemoryOptimizedCache(capacity)
        cpu_cache = CPUOptimizedCache(capacity)
        for index in range(1024):
            memory_cache.put(("t", index), row)
            cpu_cache.put(("t", index), row)
        ratio = memory_cache.item_count / cpu_cache.item_count
        assert ratio < 1.15

    def test_both_behave_as_lru(self):
        for cache in (MemoryOptimizedCache(64), CPUOptimizedCache(128)):
            cache.put("a", b"0123456789")
            cache.put("b", b"0123456789")
            cache.get("a")
            cache.put("c", bytes(40))
            assert cache.contains("a") or cache.contains("c")

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            MemoryOptimizedCache(0)
        with pytest.raises(ValueError):
            CPUOptimizedCache(-1)
