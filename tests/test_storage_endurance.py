"""Tests for the endurance / model-update-interval model."""

import pytest

from repro.sim.units import GB, TB
from repro.storage import EnduranceModel, nand_flash_spec, optane_ssd_spec, update_interval_days


class TestUpdateIntervalFormula:
    def test_paper_formula(self):
        # 365 * ModelSize / (DWPD * Capacity)
        interval = update_interval_days(100 * GB, dwpd=5.0, sm_capacity_bytes=4 * TB)
        assert interval == pytest.approx(365 * 100 * GB / (5.0 * 4 * TB))

    def test_higher_dwpd_shortens_interval(self):
        low = update_interval_days(100 * GB, 5.0, 2 * TB)
        high = update_interval_days(100 * GB, 100.0, 2 * TB)
        assert high < low

    def test_bigger_model_needs_longer_interval(self):
        small = update_interval_days(100 * GB, 5.0, 2 * TB)
        big = update_interval_days(1 * TB, 5.0, 2 * TB)
        assert big > small

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            update_interval_days(0, 5.0, TB)
        with pytest.raises(ValueError):
            update_interval_days(GB, 0, TB)
        with pytest.raises(ValueError):
            update_interval_days(GB, 5.0, 0)


class TestEnduranceModel:
    def test_lifetime_budget(self):
        model = EnduranceModel(nand_flash_spec(2 * TB), lifetime_years=5)
        expected = 5.0 * 2 * TB * 5 * 365
        assert model.lifetime_write_budget_bytes == pytest.approx(expected)

    def test_life_consumed_fraction(self):
        model = EnduranceModel(nand_flash_spec(2 * TB))
        model.record_write(model.lifetime_write_budget_bytes / 4)
        assert model.life_consumed_fraction == pytest.approx(0.25)

    def test_negative_write_rejected(self):
        with pytest.raises(ValueError):
            EnduranceModel(nand_flash_spec()).record_write(-1)

    def test_min_update_interval_scales_with_update_size(self):
        model = EnduranceModel(nand_flash_spec(2 * TB))
        small = model.min_update_interval_seconds(100 * GB)
        large = model.min_update_interval_seconds(1 * TB)
        assert large == pytest.approx(10 * small)

    def test_optane_supports_much_more_frequent_updates_than_nand(self):
        """Section 3: Optane endurance is high enough for frequent updates."""
        nand = EnduranceModel(nand_flash_spec(2 * TB))
        optane = EnduranceModel(optane_ssd_spec(2 * TB))
        update_bytes = 100 * GB
        assert (
            optane.min_update_interval_seconds(update_bytes)
            < nand.min_update_interval_seconds(update_bytes) / 10
        )

    def test_supports_update_interval(self):
        model = EnduranceModel(optane_ssd_spec(400 * GB))
        minimum = model.min_update_interval_seconds(100 * GB)
        assert model.supports_update_interval(100 * GB, minimum * 2)
        assert not model.supports_update_interval(100 * GB, minimum / 2)

    def test_invalid_interval_rejected(self):
        model = EnduranceModel(nand_flash_spec())
        with pytest.raises(ValueError):
            model.supports_update_interval(GB, 0)
        with pytest.raises(ValueError):
            model.min_update_interval_seconds(0)
        with pytest.raises(ValueError):
            EnduranceModel(nand_flash_spec(), lifetime_years=0)
