"""Figure 1: embedding table size vs bytes-per-query skew.

The paper's 140 GB model has 734 tables (445 user tables holding 100 GB); the
majority of capacity needs only low bandwidth.  This bench regenerates the
scatter's summary statistics from the synthetic table profiles.
"""

import numpy as np

from repro.analysis import format_table
from repro.core.bandwidth import capacity_split, table_bandwidth_summary
from repro.dlrm import figure1_model_spec
from repro.sim.units import GB

from _util import emit, run_once


def build_figure1():
    spec = figure1_model_spec()
    profiles = spec.table_profiles(seed=0)
    summary = table_bandwidth_summary(profiles)
    split = capacity_split(profiles)

    sizes = np.array([row[2] for row in summary], dtype=float)
    bytes_per_query = np.array([row[3] for row in summary], dtype=float)
    is_user = np.array([row[1] for row in summary])

    # Fraction of total capacity held by tables in the lowest bandwidth
    # quartile -- the "majority of capacity requires low BW" observation.
    bandwidth_threshold = np.percentile(bytes_per_query, 50)
    low_bw_capacity = sizes[bytes_per_query <= bandwidth_threshold].sum() / sizes.sum()

    return {
        "num_tables": len(summary),
        "num_user_tables": int(is_user.sum()),
        "total_size_gb": sizes.sum() / GB,
        "user_size_gb": sizes[is_user].sum() / GB,
        "user_capacity_fraction": split["user_fraction"],
        "low_bw_capacity_fraction": float(low_bw_capacity),
        "median_bytes_per_query": float(np.median(bytes_per_query)),
        "p95_bytes_per_query": float(np.percentile(bytes_per_query, 95)),
    }


def bench_fig1_bandwidth_capacity_skew(benchmark):
    stats = run_once(benchmark, build_figure1)
    emit(
        "Figure 1: table size vs bytes/query (140GB, 734-table model)",
        format_table(
            ["metric", "value"],
            [[key, value] for key, value in stats.items()],
            float_fmt=".3f",
        ),
    )
    # Shape checks mirroring the paper's reading of the figure.
    assert stats["num_tables"] == 734
    assert stats["num_user_tables"] == 445
    assert 100 <= stats["total_size_gb"] <= 180
    assert stats["user_capacity_fraction"] > 0.6
    assert stats["low_bw_capacity_fraction"] > 0.5
