"""Figure 5: spatial locality heat map.

The ratio of unique indices to unique 4 KiB blocks (normalised by rows per
block) stays low across access windows and tables: strong temporal locality
does not translate into spatial locality, which is why sub-block reads and a
row cache beat block-granular approaches.
"""

import numpy as np

from repro.analysis import format_table
from repro.sim.units import BLOCK_SIZE
from repro.workload import ZipfGenerator, spatial_locality_windows

from _util import emit, run_once

NUM_TABLES = 8
NUM_WINDOWS = 6
ACCESSES_PER_TABLE = 30_000


def build_figure5():
    rows = []
    for table_index in range(NUM_TABLES):
        num_rows = 20_000 + 15_000 * table_index
        row_bytes = 96 + 16 * table_index
        rows_per_block = max(BLOCK_SIZE // row_bytes, 1)
        trace = (
            ZipfGenerator(num_rows, alpha=1.0 + 0.05 * table_index, seed=table_index)
            .sample(ACCESSES_PER_TABLE)
            .tolist()
        )
        ratios = spatial_locality_windows(trace, rows_per_block, num_windows=NUM_WINDOWS)
        rows.append([f"table_{table_index:02d}", *[round(r, 3) for r in ratios]])
    return rows


def bench_fig5_spatial_locality(benchmark):
    rows = run_once(benchmark, build_figure5)
    emit(
        "Figure 5: spatial locality ratios per access window (1.0 = perfect)",
        format_table(
            ["table", *[f"win{w}" for w in range(NUM_WINDOWS)]],
            rows,
            float_fmt=".3f",
        ),
    )
    all_ratios = np.array([row[1:] for row in rows], dtype=float)
    # The paper's heat map is "cool": low spatial locality across the board.
    assert all_ratios.mean() < 0.4
    assert all_ratios.max() <= 1.0
