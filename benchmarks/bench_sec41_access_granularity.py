"""Section 4.1: DIRECT-IO vs mmap, and sub-block (SGL) vs full-block reads.

Reproduces the access-path comparisons: mmap costs ~3x the access latency and
wastes FM on full pages, and sub-block reads save ~75% of the bus bandwidth
plus the extra host memcpy.
"""

import numpy as np

from repro.analysis import format_table
from repro.sim.units import GB
from repro.storage import (
    BlockLayout,
    DirectIOReader,
    IOEngine,
    IOEngineConfig,
    MmapReader,
    SimulatedDevice,
    nand_flash_spec,
)
from repro.workload import ZipfGenerator

from _util import emit, run_once

ROW_BYTES = 128
#: A large sparse table: cold reads rarely share a 4 KiB block, matching the
#: paper's observation that there is little spatial locality to exploit.
NUM_ROWS = 200_000
NUM_READS = 2_000


def _setup(sub_block=True, reader="direct"):
    device = SimulatedDevice(nand_flash_spec(64 * GB), seed=0)
    layout = BlockLayout([device.spec.capacity_bytes])
    layout.add_table("t", NUM_ROWS, ROW_BYTES)
    engine = IOEngine([device], IOEngineConfig(sub_block_reads=sub_block))
    if reader == "direct":
        return DirectIOReader(engine, layout), engine
    return MmapReader(engine, layout), engine


def _run_reads(reader, engine):
    # Distinct, scattered rows: the access-path comparison is about *cold*
    # reads (the row cache in front of these paths is evaluated elsewhere).
    indices = ZipfGenerator(NUM_ROWS, 1.05, seed=1).sample(NUM_READS, unique=True).tolist()
    latencies = []
    now = 0.0
    for index in indices:
        result = reader.read_rows("t", [index], now)[0]
        latencies.append(result.latency)
        now += 50e-6
    return {
        "mean_latency_us": float(np.mean(latencies)) * 1e6,
        "bus_bytes_per_row": engine.stats.bytes_transferred / engine.stats.ios_submitted
        if engine.stats.ios_submitted
        else 0.0,
        "read_amplification": engine.stats.read_amplification,
        "fm_footprint_kib": reader.fm_footprint_bytes() / 1024,
        "host_memcpy_ms": engine.stats.memcpy_seconds * 1e3,
    }


def build_section41():
    rows = []
    for label, sub_block, reader in (
        ("DIRECT-IO + sub-block (deployed)", True, "direct"),
        ("DIRECT-IO, 4KiB reads", False, "direct"),
        ("mmap", True, "mmap"),
    ):
        access_path, engine = _setup(sub_block, reader)
        stats = _run_reads(access_path, engine)
        rows.append(
            [
                label,
                stats["mean_latency_us"],
                stats["bus_bytes_per_row"],
                stats["read_amplification"],
                stats["fm_footprint_kib"],
                stats["host_memcpy_ms"],
            ]
        )
    return rows


def bench_sec41_access_granularity(benchmark):
    rows = run_once(benchmark, build_section41)
    emit(
        "Section 4.1: access path comparison (paper: mmap ~3x latency, sub-block saves ~75% bus BW)",
        format_table(
            ["access path", "mean latency (us)", "bus bytes/row", "read amplification", "page-cache FM (KiB)", "host memcpy (ms)"],
            rows,
            float_fmt=".2f",
        ),
    )
    deployed, full_block, mmap = rows
    # Sub-block reads save >= 75% of the bus traffic of 4KiB reads.
    assert deployed[2] <= full_block[2] * 0.25
    # Full-block reads need the extra host memcpy, sub-block reads do not.
    assert deployed[5] == 0.0 and full_block[5] > 0.0
    # mmap pays roughly 3x the access latency of cold DIRECT-IO reads and
    # consumes FM for full pages.
    assert mmap[1] > deployed[1] * 1.5
    assert mmap[4] > 0.0 and deployed[4] == 0.0
