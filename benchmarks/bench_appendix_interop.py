"""Appendix A.2: inter-op parallelism.

Issuing the IO of different embedding operators asynchronously overlaps IO
across tables; the paper observed ~20% lower latency per query and hence
~20% more QPS per host at the latency target for M1.
"""

from repro.analysis import format_table
from repro.core import SDMConfig, SoftwareDefinedMemory
from repro.dlrm import ComputeSpec, InferenceEngine, M1_SPEC, build_scaled_model
from repro.serving import ServingSimulator
from repro.sim.units import KIB
from repro.workload import QueryGenerator, WorkloadConfig

from _util import emit, run_once

NUM_QUERIES = 80


def _run(inter_op: bool):
    model = build_scaled_model(
        M1_SPEC, max_tables_per_group=6, max_rows_per_table=2048, item_batch=2, seed=0
    )
    sdm = SoftwareDefinedMemory(
        model,
        SDMConfig(
            row_cache_capacity_bytes=64 * KIB,
            pooled_cache_enabled=False,
            inter_op_parallelism=inter_op,
        ),
    )
    engine = InferenceEngine(model, ComputeSpec(), sdm)
    queries = QueryGenerator(
        model, WorkloadConfig(item_batch=2, num_users=300, user_reuse_probability=0.4), seed=1
    ).generate(NUM_QUERIES)
    result = ServingSimulator(engine).run(queries, warmup_queries=10)
    return result.mean_latency, result.achieved_qps


def build_appendix_a2():
    serial_latency, serial_qps = _run(inter_op=False)
    parallel_latency, parallel_qps = _run(inter_op=True)
    return [
        ["serial embedding operators", serial_latency * 1e6, serial_qps],
        ["inter-op parallelism", parallel_latency * 1e6, parallel_qps],
    ]


def bench_appendix_interop(benchmark):
    rows = run_once(benchmark, build_appendix_a2)
    emit(
        "Appendix A.2: inter-op parallelism (paper: -20% latency, +20% QPS for M1)",
        format_table(
            ["execution", "mean latency (us)", "achieved QPS"],
            rows,
            float_fmt=".1f",
        ),
    )
    serial, parallel = rows
    latency_reduction = 1.0 - parallel[1] / serial[1]
    qps_gain = parallel[2] / serial[2] - 1.0
    assert latency_reduction > 0.05
    assert qps_gain > 0.05
