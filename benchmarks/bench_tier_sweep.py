"""Tier-geometry sweep: the cost/latency frontier of 2- vs 3-tier stacks.

Not a paper table — this benchmarks the N-tier hierarchy layer
(:mod:`repro.hierarchy`).  One scenario is served through a set of 2- and
3-tier geometries; for each we record p99 latency, achieved QPS, a
DRAM-GB-equivalent memory cost (Table 1 relative $/GB column) and the
per-tier serving split.  Run standalone to write the sweep as JSON::

    python benchmarks/bench_tier_sweep.py --out runs/tier_sweep.json

which is what the ``tier-smoke`` CI job uploads as the bench trajectory
artifact.
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ScenarioSpec, Session, format_table  # noqa: E402
from repro.hierarchy import memory_cost_dram_gb, pareto_frontier  # noqa: E402

from _util import emit, run_once  # noqa: E402

GEOMETRIES = {
    "2-tier-nand": "dram:0,nand:1GiB",
    "2-tier-optane": "dram:0,optane:1GiB",
    "2-tier-cxl": "dram:0,cxl:1GiB",
    "3-tier-small-cxl": "dram:64KiB,cxl:128KiB,nand:1GiB",
    "3-tier-big-cxl": "dram:64KiB,cxl:512KiB:64KiB,nand:1GiB",
}


def run_sweep() -> list:
    records = []
    for label, tiers in GEOMETRIES.items():
        spec = ScenarioSpec.from_dict(
            {
                "name": label,
                "model": {"max_rows_per_table": 512},
                "backend": {
                    "name": "tiered",
                    "options": {
                        "tiers": tiers,
                        "row_cache_capacity_bytes": 64 * 1024,
                    },
                },
                "workload": {"num_queries": 150},
                "serving": {"warmup_queries": 30},
            }
        )
        result = Session(spec).run()
        records.append(
            {
                "geometry": label,
                "tiers": tiers,
                "num_tiers": len(result.tiers),
                "p99_ms": result.percentile_ms("p99"),
                "achieved_qps": result.achieved_qps,
                "memory_cost_dram_gb": memory_cost_dram_gb(result.tiers),
                "rows_served_per_tier": [t["rows_served"] for t in result.tiers],
                "cache_hit_rate_per_tier": [t["cache_hit_rate"] for t in result.tiers],
                "per_tier": result.tiers,
            }
        )
    return records


def _frontier_labels(records) -> set:
    return {
        record["geometry"]
        for record in pareto_frontier(
            records,
            cost=lambda r: r["memory_cost_dram_gb"],
            latency=lambda r: r["p99_ms"],
        )
    }


def _table(records) -> str:
    frontier = _frontier_labels(records)
    rows = [
        [
            record["geometry"],
            round(record["memory_cost_dram_gb"] * 1e3, 3),
            round(record["p99_ms"], 3),
            round(record["achieved_qps"], 1),
            "/".join(str(n) for n in record["rows_served_per_tier"]),
            "*" if record["geometry"] in frontier else "",
        ]
        for record in records
    ]
    return format_table(
        ["geometry", "cost (DRAM-GB x1e-3)", "p99 (ms)", "QPS",
         "rows/tier", "frontier"],
        rows,
        title="tier sweep: 2- vs 3-tier cost/latency",
    )


def bench_tier_sweep(benchmark):
    records = run_once(benchmark, run_sweep)
    assert any(record["num_tiers"] == 3 for record in records)
    emit("tier geometry sweep (repro.hierarchy)", _table(records))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", metavar="FILE", help="write the sweep records as JSON")
    args = parser.parse_args()
    records = run_sweep()
    print(_table(records))
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "benchmark": "bench_tier_sweep",
            "frontier": sorted(_frontier_labels(records)),
            "records": records,
        }
        out.write_text(json.dumps(payload, indent=2))
        print(f"wrote {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
