"""Figure 6: cache organisation and placement trade-offs.

Two parts:
 * memory-optimised vs CPU-optimised vs unified dual cache -- entries held in
   a fixed FM budget and CPU cost per million lookups;
 * direct-DRAM placement budget sweep for an inferenceEval-style workload
   (user batch == item batch), showing QPS improving as more of the hottest
   tables are pinned in DRAM.  The sweep is a one-line
   :meth:`repro.Session.sweep` over the SDM backend's ``dram_budget_bytes``
   option.
"""

from repro import ScenarioSpec, Session, format_table
from repro.api import BackendChoice, ModelChoice, ServingChoice, WorkloadChoice
from repro.cache import CPUOptimizedCache, MemoryOptimizedCache, UnifiedCacheConfig, UnifiedRowCache
from repro.core import PlacementPolicy
from repro.sim.units import MIB

from _util import emit, run_once


def _cache_organisation_rows():
    budget = 1 * MIB
    small_row = bytes(64)
    large_row = bytes(320)
    rows = []
    for name, cache in (
        ("memory-optimised", MemoryOptimizedCache(budget)),
        ("cpu-optimised", CPUOptimizedCache(budget)),
        ("unified dual cache", UnifiedRowCache(UnifiedCacheConfig(capacity_bytes=budget))),
    ):
        for index in range(16_000):
            cache.put(("small", index), small_row)
        for index in range(1_000):
            cache.put(("large", index), large_row)
        for index in range(5_000):
            if isinstance(cache, UnifiedRowCache):
                cache.get(("small", index), size_hint=64)
            else:
                cache.get(("small", index))
        stats = cache.stats
        rows.append([name, cache.item_count, stats.cpu_seconds * 1e6])
    return rows


def _placement_sweep_rows():
    spec = ScenarioSpec(
        name="fig6-placement-sweep",
        model=ModelChoice(spec="M2", max_tables_per_group=4, max_rows_per_table=1024,
                          item_batch=4, seed=1),
        backend=BackendChoice(
            name="sdm",
            options=dict(
                placement_policy=PlacementPolicy.FIXED_FM_SM,
                row_cache_capacity_bytes=256 * 1024,
                pooled_cache_enabled=False,
            ),
        ),
        # inferenceEval: user batch == item batch (> 1), more placement
        # sensitive than inference per the paper.
        workload=WorkloadChoice(num_queries=60, item_batch=4, num_users=300, seed=2),
        serving=ServingChoice(concurrency=1, warmup_queries=10),
    )
    session = Session(spec)
    user_bytes = sum(t.size_bytes for t in session.model.tables.values() if t.spec.is_user)
    points = session.sweep(
        "backend.options.dram_budget_bytes",
        [int(user_bytes * fraction) for fraction in (0.0, 0.25, 0.5)],
    )
    labels = ("0% DRAM budget", "25%", "50%")
    return [
        [label, point.result.achieved_qps, point.result.latency["mean"] * 1e6]
        for label, point in zip(labels, points)
    ]


def build_figure6():
    return {
        "organisation": _cache_organisation_rows(),
        "placement": _placement_sweep_rows(),
    }


def bench_fig6_cache_organization(benchmark):
    data = run_once(benchmark, build_figure6)
    emit(
        "Figure 6 (top): cache organisation comparison (2 MiB FM budget)",
        format_table(
            ["organisation", "entries held", "CPU cost of 5k lookups (us)"],
            data["organisation"],
            float_fmt=".1f",
        ),
    )
    emit(
        "Figure 6 (bottom): direct DRAM placement budget vs QPS (inferenceEval)",
        format_table(
            ["DRAM budget", "achieved QPS", "mean latency (us)"],
            data["placement"],
            float_fmt=".1f",
        ),
    )
    organisation = {row[0]: row for row in data["organisation"]}
    # Memory-optimised holds more small rows; CPU-optimised burns less CPU.
    assert organisation["memory-optimised"][1] > organisation["cpu-optimised"][1]
    assert organisation["cpu-optimised"][2] < organisation["memory-optimised"][2]
    # The unified cache sits between the two extremes on capacity.
    assert organisation["unified dual cache"][1] >= organisation["cpu-optimised"][1]
    # More DRAM budget never hurts QPS.
    placement_qps = [row[1] for row in data["placement"]]
    assert placement_qps[-1] >= placement_qps[0] * 0.95
