"""Figure 3: IOPS vs loaded latency for Nand Flash and Optane SSD.

The paper benchmarks each device with ~20 lookups per IO batch and shows that
Optane sustains far higher IOPS at far lower latency.  This bench drives the
discrete-event device model at increasing offered load and reports the
latency of a 20-lookup batch, alongside the analytic loaded-latency estimate.
"""

import numpy as np

from repro.analysis import format_table
from repro.sim.units import GB, MICROSECOND
from repro.storage import (
    LoadedLatencyModel,
    ScatterGatherList,
    SimulatedDevice,
    nand_flash_spec,
    optane_ssd_spec,
)

from _util import emit, run_once

LOOKUPS_PER_BATCH = 20
ROW_BYTES = 128


def _measure_batch_latency(spec_factory, offered_iops: float, seed: int = 0) -> float:
    """Mean latency of a 20-lookup batch at the given offered IOPS."""
    device = SimulatedDevice(spec_factory(64 * GB), seed=seed)
    inter_arrival = LOOKUPS_PER_BATCH / offered_iops
    batch_latencies = []
    now = 0.0
    for _ in range(300):
        completions = []
        for lookup in range(LOOKUPS_PER_BATCH):
            sgl = ScatterGatherList()
            sgl.add((lookup * ROW_BYTES) % 3968, ROW_BYTES)
            _, done, _ = device.schedule_read(lookup % device.num_blocks, sgl, now)
            completions.append(done)
        batch_latencies.append(max(completions) - now)
        now += inter_arrival
    return float(np.mean(batch_latencies[50:]))


def build_figure3():
    rows = []
    for name, factory, fractions in (
        ("Nand Flash", nand_flash_spec, (0.1, 0.3, 0.5, 0.7, 0.9)),
        ("Optane SSD", optane_ssd_spec, (0.1, 0.3, 0.5, 0.7, 0.9)),
    ):
        spec = factory()
        model = LoadedLatencyModel(spec)
        for fraction in fractions:
            offered = fraction * spec.max_read_iops
            measured = _measure_batch_latency(factory, offered)
            analytic = model.expected_latency(offered, ROW_BYTES)
            rows.append(
                [
                    name,
                    offered / 1e3,
                    measured / MICROSECOND,
                    analytic / MICROSECOND,
                ]
            )
    return rows


def bench_fig3_device_iops_latency(benchmark):
    rows = run_once(benchmark, build_figure3)
    emit(
        "Figure 3: IOPS vs latency (20-lookup batches)",
        format_table(
            ["device", "offered kIOPS", "measured batch latency (us)", "analytic per-IO latency (us)"],
            rows,
            float_fmt=".1f",
        ),
    )
    nand = [r for r in rows if r[0] == "Nand Flash"]
    optane = [r for r in rows if r[0] == "Optane SSD"]
    # Optane offers ~8x the IOPS at ~an order of magnitude lower latency.
    assert optane[-1][1] > 4 * nand[-1][1]
    assert optane[0][2] < nand[0][2] / 3
    # Latency grows with load for both devices.
    assert nand[-1][3] > nand[0][3]
    assert optane[-1][3] > optane[0][3]
