"""Table 11: multi-tenancy on future accelerator platforms.

Co-locating experimental models is memory-capacity bound without SDM (the
paper observes 63% fleet utilisation); moving user embeddings to Optane SSDs
makes co-location compute bound (~90% utilisation) at ~1% extra host power,
cutting fleet power per unit of work by ~29%.
"""

from repro.analysis import format_table
from repro.serving import HW_FA, HW_FAO, MultiTenancyScenario
from repro.serving.multitenancy import compare_multi_tenancy
from repro.sim.units import GB

from _util import emit, run_once

#: Per experimental model: total embedding capacity and the share that must
#: stay in DRAM when SDM is enabled (row cache + dense layers).
MODEL_CAPACITY = 160 * GB
MODEL_DRAM_WITH_SDM = 20 * GB
#: Each experimental model consumes roughly a quarter of a production model's
#: resources (paper section 5.3).
MODEL_COMPUTE_FRACTION = 0.225


def build_table11():
    baseline = MultiTenancyScenario(
        platform=HW_FA,
        model_dram_bytes=MODEL_CAPACITY,
        model_sm_bytes=0.0,
        model_compute_fraction=MODEL_COMPUTE_FRACTION,
        use_sdm=False,
    )
    with_sdm = MultiTenancyScenario(
        platform=HW_FAO,
        model_dram_bytes=MODEL_DRAM_WITH_SDM,
        model_sm_bytes=MODEL_CAPACITY - MODEL_DRAM_WITH_SDM,
        model_compute_fraction=MODEL_COMPUTE_FRACTION,
        use_sdm=True,
    )
    base_result, sdm_result = compare_multi_tenancy(baseline, with_sdm)
    normaliser = base_result.fleet_power_per_work
    return [
        [
            "HW-FA",
            HW_FA.power_with_ssds,
            base_result.utilisation,
            base_result.fleet_power_per_work / normaliser,
        ],
        [
            "HW-FAO + SDM",
            HW_FAO.power_with_ssds,
            sdm_result.utilisation,
            sdm_result.fleet_power_per_work / normaliser,
        ],
    ]


def bench_table11_multitenancy(benchmark):
    rows = run_once(benchmark, build_table11)
    emit(
        "Table 11: multi-tenancy (paper: power 1.0/1.01, util 0.63/0.90, fleet power 1.0/0.71)",
        format_table(
            ["scenario", "host power", "utilisation", "normalised fleet power"],
            rows,
            float_fmt=".3f",
        ),
    )
    baseline, with_sdm = rows
    assert baseline[2] < 0.75
    assert with_sdm[2] > 0.85
    assert with_sdm[1] < baseline[1] * 1.03
    saving = 1.0 - with_sdm[3] / baseline[3]
    assert 0.2 < saving < 0.4  # the paper reports up to 29%
