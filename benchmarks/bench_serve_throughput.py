"""Serve-core throughput: scalar vs batched wall-clock queries/sec.

Not a paper table — this benchmarks the array-native serve core
(``SDMConfig.serve_mode="batched"``): whole batches of embedding-row
lookups flow through the tier chain as NumPy arrays (one cache probe and
one grouped device read per tier) instead of one Python-level walk per
row.  Both modes are run over the *same* open-loop query stream on the
same small model; the stream is replayed once to warm the row cache and
then timed, so the measurement is steady-state serve throughput, where
the per-row Python overhead of the scalar walk dominates.  The simulated
outcome (served count, simulated QPS) must be identical between modes —
the batched path is an execution strategy, not a model change.

Run standalone to write the comparison as JSON::

    python benchmarks/bench_serve_throughput.py --out runs/serve_throughput.json

which is what the ``perf-smoke`` CI job uploads (and gates with
``--min-speedup``).

``--cold`` switches to a miss-heavy regime: the row cache is shrunk far
below the working set, so nearly every lookup falls through to the
simulated devices and the measurement exercises the batched storage-IO
path (``IOEngine.submit_row_reads_batch`` + grouped device scheduling)
rather than array-native cache hits.  The queue-depth gating replay is
inherently sequential, so the cold speedup is smaller than the warm one;
CI gates it separately.

``--trace-overhead`` switches to the tracing-overhead comparison instead:
the batched serve core timed with a live :class:`ChromeTraceRecorder`
attached (engine + SDM backend) versus untraced.  The ``obs-smoke`` CI job
gates the relative slowdown with ``--max-trace-overhead`` and the simulated
outcome must be identical either way — tracing observes, never perturbs.
"""

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import format_table  # noqa: E402
from repro.core import SDMConfig, SoftwareDefinedMemory  # noqa: E402
from repro.dlrm import (  # noqa: E402
    DLRMModel,
    EmbeddingTable,
    EmbeddingTableSpec,
    MLP,
)
from repro.dlrm.inference import ComputeSpec, InferenceEngine  # noqa: E402
from repro.obs.trace import NULL_RECORDER, ChromeTraceRecorder  # noqa: E402
from repro.serving.engine import ServingEngine  # noqa: E402
from repro.sim.units import KIB, MIB  # noqa: E402
from repro.workload import (  # noqa: E402
    QueryGenerator,
    WorkloadConfig,
    generate_arrival_times,
)

SERVE_MODES = ("scalar", "batched")

# One wide user table so each query gathers a long row batch: that is the
# regime the batched serve core targets (the scalar walk costs O(rows)
# Python operations per query, the batched path O(1) array operations).
NUM_ROWS = 16_384
DIM = 64
POOLING = 1536.0
NUM_QUERIES = 200
OFFERED_QPS = 5000.0
ROW_CACHE_BYTES = 64 * MIB
# --cold shrinks the row cache far below the ~1 MiB working set of the
# user table, so the timed passes are dominated by tier-chain misses and
# the batched storage-IO submission path instead of cache hits.
COLD_ROW_CACHE_BYTES = 64 * KIB


def _bench_model() -> DLRMModel:
    specs = [
        EmbeddingTableSpec(
            name="user_0",
            num_rows=NUM_ROWS,
            dim=DIM,
            is_user=True,
            avg_pooling_factor=POOLING,
            zipf_alpha=1.05,
        ),
        EmbeddingTableSpec(
            name="item_0",
            num_rows=NUM_ROWS,
            dim=DIM,
            is_user=False,
            avg_pooling_factor=3.0,
            zipf_alpha=1.2,
        ),
    ]
    tables = {spec.name: EmbeddingTable.random(spec, seed=0) for spec in specs}
    total_dim = sum(spec.dim for spec in specs)
    return DLRMModel(
        name="bench-serve-throughput",
        bottom_mlp=MLP([4, 16, 8], seed=0, name="bench/bottom"),
        top_mlp=MLP([8 + total_dim, 1], seed=0, name="bench/top"),
        tables=tables,
        dense_dim=4,
        item_batch=1,
    )


def run_comparison(repeats: int = 3, cold: bool = False) -> dict:
    """Time both serve modes over one replayed open-loop stream.

    ``cold=True`` runs the same stream against a row cache too small for
    the working set, so the comparison measures the miss path (batched
    storage IO) rather than warm cache hits.
    """
    model = _bench_model()
    generator = QueryGenerator(
        model, WorkloadConfig(item_batch=1, num_users=300), seed=0
    )
    queries = generator.generate(NUM_QUERIES)
    arrivals = generate_arrival_times(
        NUM_QUERIES, process="poisson", offered_qps=OFFERED_QPS, seed=1
    )
    records = {}
    for mode in SERVE_MODES:
        sdm = SoftwareDefinedMemory(
            model,
            SDMConfig(
                row_cache_capacity_bytes=(
                    COLD_ROW_CACHE_BYTES if cold else ROW_CACHE_BYTES
                ),
                pooled_cache_enabled=False,
                num_devices=2,
                seed=0,
                serve_mode=mode,
            ),
        )
        serving = ServingEngine(
            InferenceEngine(model, ComputeSpec(), sdm),
            concurrency=4,
            store_results=False,
        )
        # Warm pass over the same stream: the timed passes then measure
        # steady-state serving out of a warm row cache.
        serving.run_open_loop(queries, arrivals, serve_batch=8)
        best_qps = 0.0
        result = None
        for _ in range(repeats):
            started = time.perf_counter()
            result = serving.run_open_loop(queries, arrivals, serve_batch=8)
            elapsed = time.perf_counter() - started
            best_qps = max(best_qps, result.num_queries / elapsed)
        assert result is not None
        records[mode] = {
            "serve_mode": mode,
            "wall_qps": best_qps,
            "served_queries": result.num_queries,
            "simulated_qps": result.achieved_qps,
        }
    # The two modes differ only in execution strategy: the simulated
    # outcome must match exactly or the comparison is meaningless.
    scalar, batched = records["scalar"], records["batched"]
    if scalar["simulated_qps"] != batched["simulated_qps"] or (
        scalar["served_queries"] != batched["served_queries"]
    ):
        raise AssertionError(
            "scalar and batched serve modes diverged in simulated outcome: "
            f"{scalar} vs {batched}"
        )
    return {
        "benchmark": (
            "bench_serve_throughput --cold" if cold else "bench_serve_throughput"
        ),
        "regime": "cold" if cold else "warm",
        "num_queries": NUM_QUERIES,
        "scalar_qps": scalar["wall_qps"],
        "batched_qps": batched["wall_qps"],
        "speedup": batched["wall_qps"] / scalar["wall_qps"],
        "records": list(records.values()),
    }


def run_tracing_overhead(repeats: int = 3) -> dict:
    """Time the batched serve core traced vs untraced over the same stream.

    Tracing attaches a live :class:`ChromeTraceRecorder` to both the serving
    engine and the SDM backend (the production wiring of
    ``telemetry.trace=True``), so the measured slowdown covers span emission
    at every layer: queue/serve, chain walk, storage IO, fetch/dequantise.
    """
    model = _bench_model()
    generator = QueryGenerator(
        model, WorkloadConfig(item_batch=1, num_users=300), seed=0
    )
    queries = generator.generate(NUM_QUERIES)
    arrivals = generate_arrival_times(
        NUM_QUERIES, process="poisson", offered_qps=OFFERED_QPS, seed=1
    )
    records = {}
    trace_events = 0
    for mode in ("untraced", "traced"):
        # A fresh SDM (and warm pass) per mode: the row cache warms a little
        # more on every replay, so sharing one backend would compare passes
        # at different cache ages and the simulated outcomes would diverge.
        sdm = SoftwareDefinedMemory(
            model,
            SDMConfig(
                row_cache_capacity_bytes=ROW_CACHE_BYTES,
                pooled_cache_enabled=False,
                num_devices=2,
                seed=0,
                serve_mode="batched",
            ),
        )
        serving = ServingEngine(
            InferenceEngine(model, ComputeSpec(), sdm),
            concurrency=4,
            store_results=False,
        )
        serving.run_open_loop(queries, arrivals, serve_batch=8)
        best_qps = 0.0
        result = None
        for _ in range(repeats):
            if mode == "traced":
                # Fresh recorder per pass: each timed pass pays the full
                # span-emission cost, none amortises a warm event list.
                recorder = ChromeTraceRecorder()
            else:
                recorder = NULL_RECORDER
            serving.recorder = recorder
            sdm.set_trace_recorder(recorder)
            started = time.perf_counter()
            result = serving.run_open_loop(queries, arrivals, serve_batch=8)
            elapsed = time.perf_counter() - started
            best_qps = max(best_qps, result.num_queries / elapsed)
            if mode == "traced":
                trace_events = len(recorder)
        assert result is not None
        records[mode] = {
            "tracing": mode,
            "wall_qps": best_qps,
            "served_queries": result.num_queries,
            "simulated_qps": result.achieved_qps,
        }
    untraced, traced = records["untraced"], records["traced"]
    # Tracing must observe without perturbing: identical simulated outcome.
    if untraced["simulated_qps"] != traced["simulated_qps"] or (
        untraced["served_queries"] != traced["served_queries"]
    ):
        raise AssertionError(
            "tracing changed the simulated outcome: "
            f"{untraced} vs {traced}"
        )
    return {
        "benchmark": "bench_serve_throughput --trace-overhead",
        "num_queries": NUM_QUERIES,
        "untraced_qps": untraced["wall_qps"],
        "traced_qps": traced["wall_qps"],
        "trace_events": trace_events,
        "overhead": 1.0 - traced["wall_qps"] / untraced["wall_qps"],
        "records": list(records.values()),
    }


def _overhead_table(payload: dict) -> str:
    rows = [
        [
            record["tracing"],
            round(record["wall_qps"], 1),
            record["served_queries"],
            round(record["simulated_qps"], 1),
        ]
        for record in payload["records"]
    ]
    rows.append(
        ["overhead", f"{payload['overhead'] * 100:.1f}%", "", ""]
    )
    return format_table(
        ["tracing", "wall-clock QPS", "served", "simulated QPS"],
        rows,
        title=(
            f"tracing overhead: batched serve, "
            f"{payload['trace_events']} events per pass"
        ),
    )


def _table(payload: dict) -> str:
    rows = [
        [
            record["serve_mode"],
            round(record["wall_qps"], 1),
            record["served_queries"],
            round(record["simulated_qps"], 1),
        ]
        for record in payload["records"]
    ]
    rows.append(["speedup", f"{payload['speedup']:.1f}x", "", ""])
    return format_table(
        ["serve mode", "wall-clock QPS", "served", "simulated QPS"],
        rows,
        title=(
            "serve-core throughput: scalar vs batched "
            f"({payload.get('regime', 'warm')} row cache)"
        ),
    )


def bench_serve_throughput(benchmark):
    from _util import emit, run_once

    payload = run_once(benchmark, run_comparison, repeats=1)
    assert payload["batched_qps"] > payload["scalar_qps"]
    emit("serve-core throughput (repro.core serve_mode)", _table(payload))


def bench_serve_throughput_cold(benchmark):
    from _util import emit, run_once

    payload = run_once(benchmark, run_comparison, repeats=1, cold=True)
    assert payload["batched_qps"] > payload["scalar_qps"]
    emit("serve-core throughput, cold row cache (storage-IO batching)", _table(payload))


def bench_tracing_overhead(benchmark):
    from _util import emit, run_once

    payload = run_once(benchmark, run_tracing_overhead, repeats=1)
    # run_tracing_overhead already asserts identical simulated outcomes;
    # the wall-clock gate itself lives in the obs-smoke CI job.
    assert payload["trace_events"] > 0
    emit("tracing overhead (repro.obs on the batched serve core)", _overhead_table(payload))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", metavar="FILE", help="write the comparison as JSON")
    parser.add_argument(
        "--repeats", type=int, default=3, help="timed passes per mode (best is kept)"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        help="exit non-zero when batched/scalar speedup falls below this",
    )
    parser.add_argument(
        "--cold",
        action="store_true",
        help=(
            "run the miss-heavy comparison (tiny row cache) so the batched "
            "storage-IO path dominates the measurement"
        ),
    )
    parser.add_argument(
        "--trace-overhead",
        action="store_true",
        help="compare traced vs untraced batched serving instead of scalar vs batched",
    )
    parser.add_argument(
        "--max-trace-overhead",
        type=float,
        help=(
            "exit non-zero when the tracing slowdown (1 - traced/untraced QPS) "
            "exceeds this fraction (implies --trace-overhead)"
        ),
    )
    args = parser.parse_args()
    if args.trace_overhead or args.max_trace_overhead is not None:
        payload = run_tracing_overhead(repeats=args.repeats)
        print(_overhead_table(payload))
    else:
        payload = run_comparison(repeats=args.repeats, cold=args.cold)
        print(_table(payload))
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2))
        print(f"wrote {out}", file=sys.stderr)
    if args.min_speedup is not None and payload.get("speedup", 0.0) < args.min_speedup:
        print(
            f"speedup {payload['speedup']:.2f}x below the "
            f"--min-speedup gate {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    if (
        args.max_trace_overhead is not None
        and payload["overhead"] > args.max_trace_overhead
    ):
        print(
            f"tracing overhead {payload['overhead'] * 100:.1f}% above the "
            f"--max-trace-overhead gate {args.max_trace_overhead * 100:.1f}%",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
