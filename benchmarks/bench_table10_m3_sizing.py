"""Table 10: SDM hardware sizing for the future model M3.

At 3150 QPS over 2000 user tables with pooling factor 30 and an 80% cache hit
rate, the SM tier must sustain ~36-38 MIOPS, which takes 9-10 Optane SSDs at
4 MIOPS each.
"""

from repro.analysis import format_table
from repro.serving import ssds_needed
from repro.storage import optane_ssd_spec

from _util import emit, run_once

QPS = 3150
USER_TABLES = 2000
POOLING_FACTOR = 30
EMB_DIM_BYTES = 512
HIT_RATE = 0.80


def build_table10():
    required_iops = QPS * USER_TABLES * POOLING_FACTOR * (1.0 - HIT_RATE)
    device = optane_ssd_spec()
    num_ssds = ssds_needed(required_iops, device)
    sm_bandwidth = required_iops * EMB_DIM_BYTES
    return {
        "qps": QPS,
        "user_tables": USER_TABLES,
        "pooling_factor": POOLING_FACTOR,
        "emb_dim_bytes": EMB_DIM_BYTES,
        "hit_rate": HIT_RATE,
        "required_miops": required_iops / 1e6,
        "ssd_miops": device.max_read_iops / 1e6,
        "num_ssds": num_ssds,
        "sm_bandwidth_gbps": sm_bandwidth / 1e9,
    }


def bench_table10_m3_sizing(benchmark):
    data = run_once(benchmark, build_table10)
    emit(
        "Table 10: M3 SDM sizing (paper: 36 MIOPS -> 9 Optane SSDs)",
        format_table(
            ["metric", "value"],
            [[key, value] for key, value in data.items()],
            float_fmt=".2f",
        ),
    )
    assert 34 <= data["required_miops"] <= 40
    assert data["num_ssds"] in (9, 10)
