"""Appendix A.4: cache warmup after a model update.

Reports (a) the capacity-overhead formula for rolling updates and (b) the
measured hit-rate warmup curve of a freshly loaded SDM instance, which the
paper observes to converge within minutes of serving.
"""

from repro.analysis import format_series, format_table
from repro.core import SDMConfig, SoftwareDefinedMemory, warmup_capacity_overhead, warmup_hit_rate_curve
from repro.dlrm import ComputeSpec, InferenceEngine, M1_SPEC, build_scaled_model
from repro.sim.units import MIB
from repro.workload import QueryGenerator, WorkloadConfig

from _util import emit, run_once


def build_appendix_a4():
    overhead = warmup_capacity_overhead(
        updating_fraction=0.10,
        warmup_minutes=5,
        warmup_performance=0.50,
        update_interval_minutes=30,
    )

    model = build_scaled_model(
        M1_SPEC, max_tables_per_group=4, max_rows_per_table=1024, item_batch=2, seed=0
    )
    sdm = SoftwareDefinedMemory(
        model,
        SDMConfig(row_cache_capacity_bytes=4 * MIB, pooled_cache_enabled=False),
    )
    engine = InferenceEngine(model, ComputeSpec(), sdm)
    generator = QueryGenerator(
        model,
        WorkloadConfig(item_batch=2, num_users=120, user_reuse_probability=0.9),
        seed=3,
    )
    queries = iter(generator.generate(600))

    def run_queries(count: int) -> float:
        for _ in range(count):
            engine.run_query(next(queries))
        return sdm.row_cache_hit_rate

    curve = warmup_hit_rate_curve(run_queries, checkpoints=[25, 50, 100, 200, 400])
    return overhead, curve


def bench_appendix_warmup(benchmark):
    overhead, curve = run_once(benchmark, build_appendix_a4)
    emit(
        "Appendix A.4: warmup",
        format_table(
            ["metric", "value"],
            [["rolling-update capacity overhead (r=10%, w=5m, p=50%, t=30m)", overhead]],
            float_fmt=".4f",
        )
        + "\n"
        + format_series(
            "cumulative row-cache hit rate during warmup",
            curve,
            x_label="queries served",
            y_label="hit rate",
        ),
    )
    assert 0.01 < overhead < 0.05
    hit_rates = [point[1] for point in curve]
    # The hit rate climbs as the cache warms and converges to a high value.
    assert hit_rates[-1] > hit_rates[0]
    assert hit_rates[-1] > 0.6
