"""Table 3: pooled-embedding-cache subsequence profiling.

Compares the hit rate and per-query candidate-subsequence count of three
schemes: arbitrary length-10 subsequences, length-10 subsequences restricted
to the hottest indices, and the full-sequence scheme (c = P) the paper
deploys.
"""

from repro.analysis import format_table
from repro.core import profile_subsequence_schemes
from repro.dlrm import M1_SPEC

from _util import emit, run_once

NUM_QUERIES = 1_000


def build_table3():
    """Per-query index sequences at production-like table cardinality.

    The scheme comparison is sensitive to cardinality (a scaled-down table
    makes 10-index overlaps trivially common), so the sequences are drawn
    directly from a Zipf distribution over an unscaled number of rows, with
    ~5% of queries repeating an earlier full sequence.
    """
    from repro.sim.rng import make_rng
    from repro.workload import ZipfGenerator

    num_rows = 200_000
    pooling_factor = int(M1_SPEC.user_tables.avg_pooling_factor)
    generator = ZipfGenerator(num_rows, alpha=1.0, seed=0)
    rng = make_rng(0, "table3-repeats")
    sequences = []
    for _ in range(NUM_QUERIES):
        if sequences and rng.random() < 0.05:
            sequences.append(list(sequences[int(rng.integers(len(sequences)))]))
        else:
            sequences.append(generator.sample(pooling_factor, unique=True).tolist())
    profiles = profile_subsequence_schemes(sequences, subsequence_length=10, top_indices=100)
    return [
        [p.scheme, p.hit_rate * 100.0, p.generated_sequences_per_query] for p in profiles
    ]


def bench_table3_pooled_profiling(benchmark):
    rows = run_once(benchmark, build_table3)
    emit(
        "Table 3: pooled embedding subsequence profiling "
        f"({NUM_QUERIES} queries, paper: 26% / 19% / 5%)",
        format_table(
            ["scheme", "hit rate (%)", "generated sequences per query"],
            rows,
            float_fmt=".1f",
        ),
    )
    by_scheme = {row[0]: row for row in rows}
    # Ordering of hit rates and overheads matches the paper's table.
    assert by_scheme["c=10"][1] > by_scheme["c=10, top indices"][1] > by_scheme["c=P"][1]
    assert by_scheme["c=10"][1] > by_scheme["c=P"][1]
    assert 1.0 < by_scheme["c=P"][1] < 20.0  # a few percent of full-sequence repeats
    assert by_scheme["c=P"][2] == 1.0
    assert by_scheme["c=10"][2] > 1000  # combinatorial blow-up
