"""Section 4.5: de-pruning at load time.

Serving a pruned table from SM requires its mapping tensor in FM; de-pruning
frees that FM for the row cache at the cost of a larger SM footprint and a
few percent more SM requests (the pruned rows -- rarely accessed in practice
-- now get fetched and cached).  The paper reports ~2.5% extra requests, up
to 2x the cache size and up to 48% better performance when SM-bound.

The workload here mirrors the paper's observation that pruned rows are cold:
each request draws hot (kept) rows from a Zipf distribution and touches a
pruned row with only 2.5% probability.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import SDMConfig, SoftwareDefinedMemory
from repro.dlrm import EmbeddingTable, EmbeddingTableSpec, MLP, DLRMModel, prune_table
from repro.dlrm.pruning import PRUNED
from repro.sim.rng import make_rng
from repro.sim.units import KIB
from repro.storage import IOEngineConfig
from repro.workload import ZipfGenerator

from _util import emit, run_once

NUM_ROWS = 4096
DIM = 16
PRUNE_FRACTION = 0.3
PRUNED_ACCESS_PROBABILITY = 0.025
POOLING_FACTOR = 12
NUM_REQUESTS = 1500
BASE_CACHE_BYTES = 16 * KIB


def _build_model():
    spec = EmbeddingTableSpec(
        name="user_0", num_rows=NUM_ROWS, dim=DIM, is_user=True, avg_pooling_factor=POOLING_FACTOR
    )
    item_spec = EmbeddingTableSpec(
        name="item_0", num_rows=256, dim=DIM, is_user=False, avg_pooling_factor=4
    )
    tables = {
        spec.name: EmbeddingTable.random(spec, seed=0),
        item_spec.name: EmbeddingTable.random(item_spec, seed=0),
    }
    bottom = MLP([4, 8, 8], seed=0, name="bench/bottom")
    top = MLP([8 + 2 * DIM, 8, 1], seed=0, name="bench/top")
    return DLRMModel(
        name="deprune-bench", bottom_mlp=bottom, top_mlp=top, tables=tables, dense_dim=4, item_batch=1
    )


def _requests(pruned_mapping):
    """Index sequences that rarely touch pruned rows."""
    rng = make_rng(7, "deprune-requests")
    kept_rows = np.nonzero(pruned_mapping != PRUNED)[0]
    pruned_rows = np.nonzero(pruned_mapping == PRUNED)[0]
    hot = ZipfGenerator(len(kept_rows), alpha=1.1, seed=3)
    requests = []
    for _ in range(NUM_REQUESTS):
        indices = kept_rows[hot.sample(POOLING_FACTOR, unique=True)].tolist()
        if rng.random() < PRUNED_ACCESS_PROBABILITY * POOLING_FACTOR:
            indices[-1] = int(pruned_rows[rng.integers(len(pruned_rows))])
        requests.append(indices)
    return requests


def _run(deprune: bool, requests, pruned):
    model = _build_model()
    mapping_bytes = pruned["user_0"].mapping_tensor_bytes
    sdm = SoftwareDefinedMemory(
        model,
        SDMConfig(
            row_cache_capacity_bytes=BASE_CACHE_BYTES + (mapping_bytes if deprune else 0),
            pooled_cache_enabled=False,
            deprune_at_load=deprune,
            io=IOEngineConfig(max_outstanding_per_device=16),
        ),
        pruned_tables=pruned,
    )
    completions = []
    for indices in requests:
        _, done = sdm.pooled_embeddings({"user_0": indices}, 0.0)
        completions.append(done)
    steady = completions[NUM_REQUESTS // 3 :]
    return {
        # Requests actually issued to the SM subsystem (pruned rows are
        # skipped entirely when the mapping tensor is consulted in FM).
        "sm_requests": sdm.stats.sm_row_lookups - sdm.stats.pruned_rows_skipped,
        "sm_ios": sdm.stats.sm_ios,
        "hit_rate": sdm.row_cache_hit_rate,
        "cache_capacity_kib": sdm.row_cache.capacity_bytes / KIB,
        "sm_footprint_kib": sdm.sm_footprint_bytes() / KIB,
        "mean_fetch_us": float(np.mean(steady)) * 1e6,
    }


def build_section45():
    model = _build_model()
    pruned = {"user_0": prune_table(model.table("user_0"), PRUNE_FRACTION, seed=1)}
    requests = _requests(pruned["user_0"].mapping)
    with_mapping = _run(False, requests, pruned)
    depruned = _run(True, requests, pruned)
    rows = [
        ["pruned + mapping tensor in FM", *with_mapping.values()],
        ["de-pruned at load", *depruned.values()],
    ]
    return rows, with_mapping, depruned


def bench_sec45_depruning(benchmark):
    rows, with_mapping, depruned = run_once(benchmark, build_section45)
    extra_requests = depruned["sm_requests"] / with_mapping["sm_requests"] - 1.0
    speedup = with_mapping["mean_fetch_us"] / depruned["mean_fetch_us"] - 1.0
    emit(
        "Section 4.5: de-pruning (paper: +2.5% requests, up to 2x cache, up to +48% perf)",
        format_table(
            ["configuration", "SM requests", "SM IOs", "row-cache hit rate", "cache KiB", "SM footprint KiB", "mean user-emb fetch (us)"],
            rows,
            float_fmt=".2f",
        )
        + f"\nextra SM requests from de-pruning: {extra_requests:+.1%}, fetch-time improvement: {speedup:+.1%}",
    )
    # A few percent more SM traffic (the rarely-touched zero rows).
    assert 0.0 <= extra_requests < 0.10
    # The freed mapping-tensor memory meaningfully enlarges the cache.
    assert depruned["cache_capacity_kib"] > with_mapping["cache_capacity_kib"] * 1.5
    # ...which raises the hit rate and improves the SM-bound fetch time.
    assert depruned["hit_rate"] > with_mapping["hit_rate"]
    assert depruned["mean_fetch_us"] < with_mapping["mean_fetch_us"]
    assert depruned["sm_footprint_kib"] >= with_mapping["sm_footprint_kib"]
