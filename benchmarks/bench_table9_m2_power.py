"""Table 9: M2 -- scale-out vs Nand-Flash SDM vs Optane SDM.

HW-AN + scale-out serves 450 QPS/host but needs helper hosts (1.0 + 0.25
power per 5 hosts).  HW-AN + SDM is capped by Nand Flash latency (the paper
measures 230 QPS/host), so it needs many more hosts.  HW-AO + SDM keeps the
450 QPS/host and removes the helpers, saving ~5% fleet power.
"""

from repro.analysis import format_table
from repro.serving import (
    DeploymentScenario,
    HW_AN,
    HW_AO,
    HW_S,
    PowerModel,
    plan_deployment,
    sm_bound_qps,
)
from repro.serving.power import power_saving
from repro.sim.units import MICROSECOND
from repro.storage import nand_flash_spec, optane_ssd_spec

from _util import emit, run_once

ACCELERATOR_QPS = 450.0
NUM_BASELINE_HOSTS = 1500
TOTAL_QPS = ACCELERATOR_QPS * NUM_BASELINE_HOSTS
USER_TABLES = 450
AVG_POOLING = 25
HIT_RATE = 0.9
#: The SM must serve IOs in the "few 10s of us" latency region (section 3).
LATENCY_BUDGET = 100 * MICROSECOND


def build_table9():
    power_model = PowerModel()
    lookups_per_query = USER_TABLES * AVG_POOLING

    nand_qps = min(
        sm_bound_qps(lookups_per_query, [nand_flash_spec(1e12)] * 2, HIT_RATE, LATENCY_BUDGET),
        ACCELERATOR_QPS,
    )
    optane_qps = min(
        sm_bound_qps(lookups_per_query, [optane_ssd_spec(400e9)] * 2, HIT_RATE, LATENCY_BUDGET),
        ACCELERATOR_QPS,
    )

    scale_out = plan_deployment(
        DeploymentScenario(
            "HW-AN + ScaleOut",
            HW_AN,
            qps_per_host=ACCELERATOR_QPS,
            total_qps=TOTAL_QPS,
            helper_platform=HW_S,
            helper_hosts_per_host=1.0 / 5.0,
        ),
        power_model,
    )
    nand_sdm = plan_deployment(
        DeploymentScenario("HW-AN + SDM", HW_AN, qps_per_host=nand_qps, total_qps=TOTAL_QPS),
        power_model,
    )
    optane_sdm = plan_deployment(
        DeploymentScenario("HW-AO + SDM", HW_AO, qps_per_host=optane_qps, total_qps=TOTAL_QPS),
        power_model,
    )
    return {
        "rows": [
            ["HW-AN + ScaleOut", ACCELERATOR_QPS, scale_out.total_hosts, scale_out.total_power],
            ["HW-AN + SDM", nand_qps, nand_sdm.total_hosts, nand_sdm.total_power],
            ["HW-AO + SDM", optane_qps, optane_sdm.total_hosts, optane_sdm.total_power],
        ],
        "saving_vs_scaleout": power_saving(scale_out.total_power, optane_sdm.total_power),
        "required_iops": TOTAL_QPS / NUM_BASELINE_HOSTS * lookups_per_query,
        "sustained_iops": ACCELERATOR_QPS * lookups_per_query * (1 - HIT_RATE),
    }


def bench_table9_m2_power(benchmark):
    data = run_once(benchmark, build_table9)
    emit(
        "Table 9: M2 deployment comparison (paper: 450/230/450 QPS, 5% saving)",
        format_table(
            ["scenario", "QPS/host", "total hosts", "total power"],
            data["rows"],
            float_fmt=".1f",
        )
        + "\n"
        + format_table(
            ["metric", "value"],
            [
                ["power saving (Optane SDM vs scale-out)", data["saving_vs_scaleout"]],
                ["raw IOPS per host", data["required_iops"]],
                ["sustained IOPS per host (90% hit)", data["sustained_iops"]],
            ],
            float_fmt=".3f",
        ),
    )
    rows = {row[0]: row for row in data["rows"]}
    # Nand Flash caps per-host QPS well below the accelerator's 450.
    assert rows["HW-AN + SDM"][1] < 450
    # Optane keeps the accelerator fully fed.
    assert rows["HW-AO + SDM"][1] == 450
    # Nand SDM burns more fleet power than scale-out; Optane SDM saves power.
    assert rows["HW-AN + SDM"][3] > rows["HW-AN + ScaleOut"][3]
    assert 0.02 < data["saving_vs_scaleout"] < 0.10
    # Raw demand is ~5 MIOPS, sustained ~0.5 MIOPS (paper: 4.8M / 480k).
    assert 4e6 < data["required_iops"] < 6.5e6
    assert 4e5 < data["sustained_iops"] < 6.5e5
