"""Figure 4: temporal locality of user and item embedding accesses.

(a) user tables, (b) item tables (more skewed), (c) the same user tables as
seen by a single host under user-sticky routing (higher locality).  Reported
as the access share covered by the hottest 1% / 10% / 50% of accessed rows.

The workload is declared as a :class:`repro.ScenarioSpec` and generated
through the :class:`repro.Session` facade; the backend is never built (the
session is lazy), only the query stream and its access traces are used.
"""

from repro import ScenarioSpec, Session, format_table
from repro.api import ModelChoice, WorkloadChoice
from repro.workload import RequestRouter, RoutingPolicy, top_fraction_coverage

from _util import emit, run_once

FIGURE4_SPEC = ScenarioSpec(
    name="fig4-temporal-locality",
    model=ModelChoice(spec="M2", max_tables_per_group=4, max_rows_per_table=4096, item_batch=4),
    workload=WorkloadChoice(
        # Long enough that the largest host's share of the stream (~900
        # queries under 4-way sticky routing) reaches its steady-state
        # locality; shorter traces under-cover the per-host top-10% set.
        num_queries=4000,
        item_batch=4,
        num_users=400,
        user_zipf_alpha=1.2,
        user_reuse_probability=0.8,
        sequence_repeat_probability=0.05,
    ),
)


def build_figure4():
    session = Session(FIGURE4_SPEC)
    queries = session.queries()

    user_table = session.model.user_table_specs[0].name
    item_table = session.model.item_table_specs[0].name

    user_trace = session.access_trace(user_table)
    item_trace = session.access_trace(item_table)

    router = RequestRouter(4, RoutingPolicy.USER_STICKY)
    per_host = router.split(queries)
    host_queries = max(per_host.values(), key=len)
    host_trace = session.access_trace(user_table, queries=host_queries)

    rows = []
    for label, trace in (
        ("(a) user tables, global", user_trace),
        ("(b) item tables, global", item_trace),
        ("(c) user tables, one host (sticky)", host_trace),
    ):
        rows.append(
            [
                label,
                top_fraction_coverage(trace, 0.01),
                top_fraction_coverage(trace, 0.10),
                top_fraction_coverage(trace, 0.50),
            ]
        )
    return rows


def bench_fig4_temporal_locality(benchmark):
    rows = run_once(benchmark, build_figure4)
    emit(
        "Figure 4: temporal locality CDF summary",
        format_table(
            ["trace", "top 1% coverage", "top 10% coverage", "top 50% coverage"],
            rows,
            float_fmt=".3f",
        ),
    )
    user, item, host = rows
    # Power-law: the top 10% of rows absorb the majority of accesses.
    assert user[2] > 0.3
    # Item embeddings show more locality than user embeddings (paper obs.).
    assert item[2] >= user[2]
    # Per-host locality under sticky routing is at least the global locality.
    assert host[2] >= user[2] * 0.9
