"""Campaign executor + store: cold matrix run vs memoised re-run.

Not a paper table — this benchmarks the orchestration layer itself.  A small
backend × concurrency matrix is executed cold (every point simulated) and
then re-run against its experiment store, where every point is served from
disk.  The second number is what "interrupted campaigns resume for free"
costs in practice: a JSONL read instead of a simulation.
"""

import tempfile
from pathlib import Path

from repro import CampaignSpec, ExperimentStore, ScenarioSpec, run_campaign
from repro.api import ModelChoice, ServingChoice, WorkloadChoice
from repro.analysis import format_table

from _util import emit, run_once

GRID = {"backend.name": ["dram", "sdm"], "serving.concurrency": [1, 2]}


def build_campaign() -> CampaignSpec:
    base = ScenarioSpec(
        name="bench-campaign",
        model=ModelChoice(max_tables_per_group=2, max_rows_per_table=512),
        workload=WorkloadChoice(num_queries=60, num_users=100),
        serving=ServingChoice(concurrency=1, warmup_queries=10),
    )
    return CampaignSpec.from_grid(base, GRID, name="bench-campaign")


def run_cold_then_warm(store_root: Path):
    campaign = build_campaign()
    store = ExperimentStore(store_root)
    cold = run_campaign(campaign, store=store)
    warm = run_campaign(campaign, store=store)
    return cold, warm


def bench_campaign_cold(benchmark):
    with tempfile.TemporaryDirectory() as tmp:
        campaign = build_campaign()
        store = ExperimentStore(Path(tmp) / "run")
        outcomes = run_once(benchmark, run_campaign, campaign, store=store)
    rows = [
        [outcome.scenario, round(outcome.result.achieved_qps, 1), outcome.cached]
        for outcome in outcomes
    ]
    emit(
        "campaign: cold run (every point simulated)",
        format_table(["point", "achieved QPS", "cached"], rows),
    )


def bench_campaign_store_served(benchmark):
    with tempfile.TemporaryDirectory() as tmp:
        store_root = Path(tmp) / "run"
        campaign = build_campaign()
        store = ExperimentStore(store_root)
        run_campaign(campaign, store=store)  # populate outside the timed region
        outcomes = run_once(
            benchmark, run_campaign, campaign, store=ExperimentStore(store_root)
        )
    assert all(outcome.cached for outcome in outcomes)
    rows = [
        [outcome.scenario, round(outcome.result.achieved_qps, 1), outcome.cached]
        for outcome in outcomes
    ]
    emit(
        "campaign: re-run against the store (zero points simulated)",
        format_table(["point", "achieved QPS", "cached"], rows),
    )
