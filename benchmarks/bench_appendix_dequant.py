"""Appendix A.5: de-quantisation at load time.

Expanding embedding rows to float32 on SM saves the runtime dequantisation
but makes the FM row cache far less space-efficient; the paper finds the
cache effect dominates for most use cases.  This bench compares cache
capacity (rows/MiB), hit rate and steady-state latency with and without
de-quantisation at load.
"""

from repro.analysis import format_table
from repro.core import SDMConfig, SoftwareDefinedMemory, dequantize_table
from repro.dlrm import ComputeSpec, InferenceEngine
from repro.sim.units import KIB
from repro.workload import QueryGenerator, WorkloadConfig

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))
from helpers import small_model  # noqa: E402

from _util import emit, run_once

NUM_QUERIES = 300


def _run(dequantize: bool):
    model = small_model(num_user=2, num_item=1, num_rows=2048, dim=32, item_batch=2, seed=0)
    sdm = SoftwareDefinedMemory(
        model,
        SDMConfig(
            row_cache_capacity_bytes=32 * KIB,
            pooled_cache_enabled=False,
            dequantize_at_load=dequantize,
        ),
    )
    engine = InferenceEngine(model, ComputeSpec(), sdm)
    queries = QueryGenerator(
        model,
        WorkloadConfig(item_batch=2, num_users=100, user_reuse_probability=0.8),
        seed=1,
    ).generate(NUM_QUERIES)
    latencies = [engine.run_query(q).latency for q in queries]
    steady = latencies[NUM_QUERIES // 3 :]
    return {
        "hit_rate": sdm.row_cache_hit_rate,
        "sm_footprint_kib": sdm.sm_footprint_bytes() / KIB,
        "cached_rows": sdm.row_cache.item_count,
        "mean_latency_us": sum(steady) / len(steady) * 1e6,
    }


def build_appendix_a5():
    quantized = _run(dequantize=False)
    dequantized = _run(dequantize=True)
    table = small_model(num_rows=64, dim=32).table("user_0")
    expansion = dequantize_table(table)
    rows = [
        ["quantised rows on SM (deployed)", *quantized.values()],
        ["de-quantised at load", *dequantized.values()],
    ]
    return rows, quantized, dequantized, expansion


def bench_appendix_dequant(benchmark):
    rows, quantized, dequantized, expansion = run_once(benchmark, build_appendix_a5)
    emit(
        "Appendix A.5: de-quantisation at load "
        f"(row expands {expansion.sm_growth_factor:.2f}x, cache holds "
        f"{expansion.cache_efficiency_loss:.0%} fewer rows per MiB)",
        format_table(
            ["configuration", "row-cache hit rate", "SM footprint KiB", "rows cached", "steady latency (us)"],
            rows,
            float_fmt=".2f",
        ),
    )
    # De-quantisation grows the SM footprint and caches fewer rows in the
    # same FM budget, hurting the hit rate -- the paper's conclusion.
    assert dequantized["sm_footprint_kib"] > quantized["sm_footprint_kib"]
    assert dequantized["cached_rows"] < quantized["cached_rows"]
    assert dequantized["hit_rate"] <= quantized["hit_rate"] + 0.02
