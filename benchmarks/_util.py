"""Shared helpers for the benchmark harness.

Every ``bench_*`` file regenerates one table or figure of the paper.  The
benchmark fixture times a single full run of the experiment (pedantic mode)
and the resulting rows are printed for comparison with ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Callable


def run_once(benchmark, fn: Callable, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark fixture, return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def emit(title: str, body: str) -> None:
    """Print an experiment's output with a recognisable banner."""
    banner = "=" * max(len(title), 20)
    print(f"\n{banner}\n{title}\n{banner}\n{body}\n")
