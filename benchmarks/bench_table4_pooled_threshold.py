"""Table 4: pooled-embedding cache hit rate and hit length vs LenThreshold.

Sweeps the minimum-sequence-length knob of the pooled embedding cache; longer
thresholds trade a slightly lower hit rate for longer (more valuable) hits.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import PooledEmbeddingCache
from repro.dlrm import M1_SPEC, build_scaled_model
from repro.sim.units import MIB
from repro.workload import QueryGenerator, WorkloadConfig

from _util import emit, run_once

THRESHOLDS = (1, 4, 8, 16, 32)
NUM_QUERIES = 2_000


def build_table4():
    model = build_scaled_model(
        M1_SPEC, max_tables_per_group=3, max_rows_per_table=4096, item_batch=1, seed=0
    )
    config = WorkloadConfig(
        item_batch=1,
        num_users=1200,
        user_reuse_probability=0.06,
        sequence_repeat_probability=0.01,
        pooling_factor_jitter=0.8,
    )
    queries = QueryGenerator(model, config, seed=0).generate(NUM_QUERIES)

    rows = []
    for threshold in THRESHOLDS:
        cache = PooledEmbeddingCache(4 * MIB, len_threshold=threshold)
        for query in queries:
            for table_name, indices in query.user_indices.items():
                if cache.get(table_name, indices) is None and cache.eligible(indices):
                    dim = model.table(table_name).spec.dim
                    cache.put(table_name, indices, np.zeros(dim, dtype=np.float32))
        rows.append(
            [threshold, cache.stats.hit_rate * 100.0, cache.stats.average_hit_length]
        )
    return rows


def bench_table4_pooled_threshold(benchmark):
    rows = run_once(benchmark, build_table4)
    emit(
        "Table 4: pooled cache vs LenThreshold (paper: ~4-4.6% hit, avg len 11->76)",
        format_table(
            ["LenThreshold", "hit rate (%)", "avg hit length"],
            rows,
            float_fmt=".2f",
        ),
    )
    hit_rates = [row[1] for row in rows]
    hit_lengths = [row[2] for row in rows]
    # Hit rates stay in the single-digit-percent range and vary mildly.
    assert all(0.5 < rate < 20 for rate in hit_rates)
    # Average hit length grows monotonically with the threshold.
    assert all(b >= a for a, b in zip(hit_lengths, hit_lengths[1:]))
