"""Table 8: M1 on HW-L (DRAM only) vs HW-SS + SDM (Nand Flash).

Reproduces the deployment accounting: HW-SS serves half the per-host QPS at
0.4x the power, so the fleet saves ~20% power.  Also checks the section-5.1
side facts: ~246 kIOPS raw demand, >90% steady-state hit rate (measured on
the scaled model), <25 kIOPS sustained demand after the cache, and the DRAM
saved per model.
"""

from repro.analysis import format_table
from repro.core import SDMConfig, SoftwareDefinedMemory, iops_requirement
from repro.dlrm import ComputeSpec, InferenceEngine, M1_SPEC, build_scaled_model
from repro.serving import (
    DeploymentScenario,
    HW_L,
    HW_SS,
    PowerModel,
    plan_deployment,
)
from repro.serving.power import power_saving
from repro.sim.units import GB, MIB
from repro.storage import Technology
from repro.workload import QueryGenerator, WorkloadConfig

from _util import emit, run_once

HW_L_QPS = 240.0
HW_SS_QPS = 120.0
TOTAL_QPS = HW_L_QPS * 1200  # the paper's 1200-host HW-L deployment
SM_TABLES = 50
AVG_POOLING = 42


def _measured_hit_rate() -> float:
    """Steady-state row-cache hit rate on the scaled M1 model."""
    model = build_scaled_model(
        M1_SPEC, max_tables_per_group=4, max_rows_per_table=8192, item_batch=2, seed=0
    )
    sdm = SoftwareDefinedMemory(
        model,
        SDMConfig(
            device_technology=Technology.NAND_FLASH,
            row_cache_capacity_bytes=2 * MIB,
            pooled_cache_enabled=False,
        ),
    )
    engine = InferenceEngine(model, ComputeSpec(), sdm)
    queries = QueryGenerator(
        model,
        WorkloadConfig(item_batch=2, num_users=1000, user_reuse_probability=0.7),
        seed=0,
    ).generate(400)
    for query in queries:
        engine.run_query(query)
    sdm.reset_stats()
    sdm.row_cache.reset_stats()
    for query in queries[:100]:
        engine.run_query(query)
    return sdm.row_cache_hit_rate


def build_table8():
    power_model = PowerModel()
    baseline = plan_deployment(
        DeploymentScenario("HW-L", HW_L, qps_per_host=HW_L_QPS, total_qps=TOTAL_QPS),
        power_model,
    )
    sdm_plan = plan_deployment(
        DeploymentScenario("HW-SS + SDM", HW_SS, qps_per_host=HW_SS_QPS, total_qps=TOTAL_QPS),
        power_model,
    )

    raw_iops = HW_SS_QPS * SM_TABLES * AVG_POOLING
    hit_rate = _measured_hit_rate()
    steady_iops = raw_iops * (1.0 - hit_rate)
    dram_saved_tb = (HW_L.dram_bytes - HW_SS.dram_bytes) * baseline.num_hosts / 1e12

    return {
        "rows": [
            ["HW-L", HW_L_QPS, 1.0, baseline.num_hosts, baseline.total_power],
            ["HW-SS + SDM", HW_SS_QPS, 0.4, sdm_plan.num_hosts, sdm_plan.total_power],
        ],
        "power_saving": power_saving(baseline.total_power, sdm_plan.total_power),
        "raw_iops": raw_iops,
        "hit_rate": hit_rate,
        "steady_iops": steady_iops,
        "dram_saved_tb": dram_saved_tb,
    }


def bench_table8_m1_power(benchmark):
    data = run_once(benchmark, build_table8)
    emit(
        "Table 8: M1 power comparison (paper: 20% saving, >96% hit rate, 246k->10k IOPS)",
        format_table(
            ["scenario", "QPS/host", "power/host", "hosts", "total power"],
            data["rows"],
            float_fmt=".1f",
        )
        + "\n"
        + format_table(
            ["metric", "value"],
            [
                ["fleet power saving", data["power_saving"]],
                ["raw SM IOPS demand", data["raw_iops"]],
                ["measured steady-state hit rate", data["hit_rate"]],
                ["steady-state SM IOPS", data["steady_iops"]],
                ["DRAM saved fleet-wide (TB)", data["dram_saved_tb"]],
            ],
            float_fmt=".3f",
        ),
    )
    assert abs(data["power_saving"] - 0.2) < 1e-9
    assert 240_000 <= data["raw_iops"] <= 260_000
    assert data["hit_rate"] > 0.85
    assert data["steady_iops"] < 40_000
    assert data["dram_saved_tb"] > 150
