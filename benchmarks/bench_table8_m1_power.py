"""Table 8: M1 on HW-L (DRAM only) vs HW-SS + SDM (Nand Flash).

Reproduces the deployment accounting: HW-SS serves half the per-host QPS at
0.4x the power, so the fleet saves ~20% power.  Also checks the section-5.1
side facts: ~246 kIOPS raw demand, >90% steady-state hit rate (measured on
the scaled model), <25 kIOPS sustained demand after the cache, and the DRAM
saved per model.

The whole scenario — scaled M1 on the SDM backend, steady-state measurement
window, HW-SS fleet sizing against the HW-L baseline — is one
:class:`repro.ScenarioSpec`; a single :meth:`repro.Session.run` yields both
the measured hit rate and the Table 8 power comparison.
"""

from repro import ScenarioSpec, Session, format_table
from repro.api import BackendChoice, ModelChoice, ServingChoice, WorkloadChoice
from repro.serving import HW_L, HW_SS
from repro.sim.units import MIB
from repro.storage import Technology

from _util import emit, run_once

HW_L_QPS = 240.0
HW_SS_QPS = 120.0
TOTAL_QPS = HW_L_QPS * 1200  # the paper's 1200-host HW-L deployment
SM_TABLES = 50
AVG_POOLING = 42

TABLE8_SPEC = ScenarioSpec(
    name="table8-m1-power",
    model=ModelChoice(spec="M1", max_tables_per_group=4, max_rows_per_table=8192, item_batch=2),
    backend=BackendChoice(
        name="sdm",
        options=dict(
            device_technology=Technology.NAND_FLASH,
            row_cache_capacity_bytes=2 * MIB,
            pooled_cache_enabled=False,
        ),
    ),
    workload=WorkloadChoice(
        num_queries=400, item_batch=2, num_users=1000, user_reuse_probability=0.7
    ),
    serving=ServingChoice(
        concurrency=1,
        # Warm the caches on 300 queries, then measure steady state only.
        warmup_queries=300,
        reset_stats_after_warmup=True,
        platform="HW-SS",
        qps_per_host=HW_SS_QPS,
        baseline_platform="HW-L",
        baseline_qps_per_host=HW_L_QPS,
        fleet_qps=TOTAL_QPS,
    ),
)


def build_table8():
    result = Session(TABLE8_SPEC).run()
    power = result.power

    raw_iops = HW_SS_QPS * SM_TABLES * AVG_POOLING
    hit_rate = result.backend_stats["row cache hit rate"]
    steady_iops = raw_iops * (1.0 - hit_rate)
    dram_saved_tb = (HW_L.dram_bytes - HW_SS.dram_bytes) * power.baseline_num_hosts / 1e12

    return {
        "rows": [
            ["HW-L", HW_L_QPS, 1.0, power.baseline_num_hosts, power.baseline_fleet_power],
            ["HW-SS + SDM", HW_SS_QPS, 0.4, power.num_hosts, power.fleet_power],
        ],
        "power_saving": power.power_saving,
        "raw_iops": raw_iops,
        "hit_rate": hit_rate,
        "steady_iops": steady_iops,
        "dram_saved_tb": dram_saved_tb,
    }


def bench_table8_m1_power(benchmark):
    data = run_once(benchmark, build_table8)
    emit(
        "Table 8: M1 power comparison (paper: 20% saving, >96% hit rate, 246k->10k IOPS)",
        format_table(
            ["scenario", "QPS/host", "power/host", "hosts", "total power"],
            data["rows"],
            float_fmt=".1f",
        )
        + "\n"
        + format_table(
            ["metric", "value"],
            [
                ["fleet power saving", data["power_saving"]],
                ["raw SM IOPS demand", data["raw_iops"]],
                ["measured steady-state hit rate", data["hit_rate"]],
                ["steady-state SM IOPS", data["steady_iops"]],
                ["DRAM saved fleet-wide (TB)", data["dram_saved_tb"]],
            ],
            float_fmt=".3f",
        ),
    )
    assert abs(data["power_saving"] - 0.2) < 1e-9
    assert 240_000 <= data["raw_iops"] <= 260_000
    assert data["hit_rate"] > 0.85
    assert data["steady_iops"] < 40_000
    assert data["dram_saved_tb"] > 150
