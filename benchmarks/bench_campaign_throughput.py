"""Campaign throughput: worker-resident backend reuse on vs off.

Not a paper table — this benchmarks the campaign runtime layer
(:mod:`repro.runtime.runtimes`).  A model-heavy traffic-axis grid is the
regime backend reuse targets: every point shares the same model and backend
sections (one ``backend_hash``), differing only in offered load, so with
reuse enabled the worker builds the SDM once and restores it to pristine
state per point instead of regenerating tables, placement and tier chain
six times.  Both modes run the identical campaign on the serial runtime and
the resulting per-point metrics must be bit-for-bit identical — reuse is an
execution strategy, not a model change.

Run standalone to write the comparison as JSON::

    python benchmarks/bench_campaign_throughput.py --out runs/campaign_throughput.json

which is what the ``campaign-smoke`` CI job uploads (and gates with
``--min-speedup``).
"""

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import CampaignSpec, ScenarioSpec, format_table, run_campaign  # noqa: E402
from repro.api import ModelChoice, ServingChoice, WorkloadChoice  # noqa: E402
from repro.api.spec import TrafficSpec  # noqa: E402
from repro.runtime.runtimes import clear_backend_cache  # noqa: E402

# Model-heavy on purpose: large tables make model+backend construction the
# dominant per-point cost, which is exactly what reuse amortises.  The
# traffic axis leaves the backend_hash constant across all six points.
MODEL_ROWS = 8192
MODEL_TABLES = 6
NUM_QUERIES = 16
OFFERED_QPS_AXIS = [200.0, 400.0, 600.0, 800.0, 1000.0, 1200.0]


def build_campaign() -> CampaignSpec:
    base = ScenarioSpec(
        name="bench-campaign-throughput",
        model=ModelChoice(
            spec="M1",
            max_tables_per_group=MODEL_TABLES,
            max_rows_per_table=MODEL_ROWS,
        ),
        workload=WorkloadChoice(num_queries=NUM_QUERIES, num_users=60),
        traffic=TrafficSpec(mode="open", arrival="poisson", offered_qps=500.0),
        serving=ServingChoice(concurrency=1, warmup_queries=0),
    )
    return CampaignSpec.from_grid(
        base,
        {"traffic.offered_qps": OFFERED_QPS_AXIS},
        name="bench-campaign-throughput",
    )


def run_comparison(repeats: int = 1) -> dict:
    """Time the same campaign with backend reuse off, then on.

    Both passes use the serial runtime so the comparison isolates the reuse
    mechanism from pool scheduling; the resident-backend cache is cleared
    before every timed pass, so the reuse number includes the one first-point
    build the cache amortises across the grid.
    """
    campaign = build_campaign()
    num_points = len(campaign.points())
    records = {}
    outcomes_by_mode = {}
    for mode, reuse in (("reuse-off", False), ("reuse-on", True)):
        best_pps = 0.0
        outcomes = None
        for _ in range(repeats):
            clear_backend_cache()
            started = time.perf_counter()
            outcomes = run_campaign(
                campaign, runtime="serial", reuse_backends=reuse
            )
            elapsed = time.perf_counter() - started
            best_pps = max(best_pps, num_points / elapsed)
        clear_backend_cache()
        assert outcomes is not None
        outcomes_by_mode[mode] = outcomes
        records[mode] = {
            "mode": mode,
            "points_per_second": best_pps,
            "num_points": num_points,
        }
    # Reuse is an execution strategy: every per-point result dict must be
    # bit-for-bit identical or the speedup is meaningless.
    fresh = [o.metrics for o in outcomes_by_mode["reuse-off"]]
    reused = [o.metrics for o in outcomes_by_mode["reuse-on"]]
    if fresh != reused:
        raise AssertionError(
            "backend reuse changed a per-point result; the pristine-restore "
            "contract is broken"
        )
    off, on = records["reuse-off"], records["reuse-on"]
    return {
        "benchmark": "bench_campaign_throughput",
        "num_points": num_points,
        "model_rows": MODEL_ROWS,
        "model_tables": MODEL_TABLES,
        "num_queries": NUM_QUERIES,
        "reuse_off_pps": off["points_per_second"],
        "reuse_on_pps": on["points_per_second"],
        "speedup": on["points_per_second"] / off["points_per_second"],
        "records": list(records.values()),
    }


def _table(payload: dict) -> str:
    rows = [
        [record["mode"], round(record["points_per_second"], 2), record["num_points"]]
        for record in payload["records"]
    ]
    rows.append(["speedup", f"{payload['speedup']:.1f}x", ""])
    return format_table(
        ["backend reuse", "points/sec", "points"],
        rows,
        title=(
            f"campaign throughput: {payload['num_points']}-point traffic grid, "
            f"{payload['model_tables']}x{payload['model_rows']}-row tables"
        ),
    )


def bench_campaign_throughput(benchmark):
    from _util import emit, run_once

    payload = run_once(benchmark, run_comparison, repeats=1)
    assert payload["reuse_on_pps"] > payload["reuse_off_pps"]
    emit("campaign throughput (worker-resident backend reuse)", _table(payload))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", metavar="FILE", help="write the comparison as JSON")
    parser.add_argument(
        "--repeats", type=int, default=1, help="timed passes per mode (best is kept)"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        help="exit non-zero when reuse-on/reuse-off speedup falls below this",
    )
    args = parser.parse_args()
    payload = run_comparison(repeats=args.repeats)
    print(_table(payload))
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2))
        print(f"wrote {out}", file=sys.stderr)
    if args.min_speedup is not None and payload["speedup"] < args.min_speedup:
        print(
            f"speedup {payload['speedup']:.2f}x below the "
            f"--min-speedup gate {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
