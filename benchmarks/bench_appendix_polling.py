"""Appendix A.1: IRQ vs polling completions.

Polling removes the interrupt overhead and improves IOPS per core by ~50%,
but is hard to integrate with operator-based execution; the deployed system
uses IRQ completions.  This bench reports the modelled IOPS/core of both
modes and the measured CPU seconds for a fixed IO count.
"""

from repro.analysis import format_table
from repro.sim.units import GB
from repro.storage import (
    BlockLayout,
    IOEngine,
    IOEngineConfig,
    IOMode,
    IORequest,
    SimulatedDevice,
    optane_ssd_spec,
)

from _util import emit, run_once

NUM_IOS = 5_000


def _run(mode: IOMode):
    device = SimulatedDevice(optane_ssd_spec(64 * GB), seed=0)
    layout = BlockLayout([device.spec.capacity_bytes])
    layout.add_table("t", 10_000, 128)
    config = IOEngineConfig(mode=mode)
    engine = IOEngine([device], config)
    requests = [
        IORequest("t", row % 10_000, layout.locate("t", row % 10_000))
        for row in range(NUM_IOS)
    ]
    engine.submit_row_reads(requests, 0.0)
    return {
        "iops_per_core": config.iops_per_core(),
        "cpu_seconds": engine.stats.cpu_seconds,
    }


def build_appendix_a1():
    irq = _run(IOMode.IRQ)
    polling = _run(IOMode.POLLING)
    gain = polling["iops_per_core"] / irq["iops_per_core"] - 1.0
    return [
        ["IRQ", irq["iops_per_core"], irq["cpu_seconds"] * 1e3],
        ["polling", polling["iops_per_core"], polling["cpu_seconds"] * 1e3],
    ], gain


def bench_appendix_polling(benchmark):
    rows, gain = run_once(benchmark, build_appendix_a1)
    emit(
        "Appendix A.1: IRQ vs polling (paper: +50% IOPS/core with polling)",
        format_table(
            ["completion mode", "IOPS per core", f"CPU ms for {NUM_IOS} IOs"],
            rows,
            float_fmt=".1f",
        )
        + f"\nIOPS/core gain from polling: {gain:.1%}",
    )
    assert abs(gain - 0.5) < 0.01
    assert rows[1][2] < rows[0][2]
