"""Table 1: slow-memory technology envelope.

Regenerates the technology comparison the paper uses to motivate Nand Flash
and Optane SSD as the deployed SM options.
"""

from repro.analysis import format_table
from repro.sim.units import MICROSECOND
from repro.storage import TABLE1_SPECS

from _util import emit, run_once


def build_table1():
    rows = []
    for spec in TABLE1_SPECS.values():
        rows.append(
            [
                spec.name,
                spec.max_read_iops / 1e6,
                spec.base_read_latency / MICROSECOND,
                spec.endurance_dwpd,
                spec.access_granularity_bytes,
                f"1/{round(1 / spec.relative_cost_per_gb)}",
                spec.sourcing,
            ]
        )
    return rows


def bench_table1_technologies(benchmark):
    rows = run_once(benchmark, build_table1)
    emit(
        "Table 1: SM technology options",
        format_table(
            ["Technology", "IOPS (M)", "Latency (us)", "Endurance (DWPD)", "Granularity (B)", "Cost vs DRAM", "Sourcing"],
            rows,
            float_fmt=".1f",
        ),
    )
    assert len(rows) == 5
