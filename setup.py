"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so editable installs work in offline
environments without the ``wheel`` package (legacy ``setup.py develop`` path).
All metadata — including the version, single-sourced from
``repro.__version__`` — lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
