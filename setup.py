"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so editable installs work in offline
environments without the ``wheel`` package (legacy ``setup.py develop`` path).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description="Software Defined Memory for massive DLRM inference (ICDCS 2022 reproduction)",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
